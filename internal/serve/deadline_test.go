package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestCheckDeadline(t *testing.T) {
	cases := []struct {
		name     string
		budget   time.Duration
		maxDelay time.Duration
		depth    int
		drain    float64
		reject   bool
		reason   string
	}{
		{name: "expired", budget: 0, maxDelay: 2 * time.Millisecond, reject: true, reason: "expired"},
		{name: "negative", budget: -time.Second, maxDelay: 2 * time.Millisecond, reject: true, reason: "expired"},
		{name: "under batch floor", budget: time.Millisecond, maxDelay: 4 * time.Millisecond, reject: true, reason: "under_batch_floor"},
		{name: "exactly the floor admits", budget: 4 * time.Millisecond, maxDelay: 4 * time.Millisecond},
		{name: "idle lane admits", budget: 10 * time.Millisecond, maxDelay: 2 * time.Millisecond, depth: 0, drain: 100},
		{name: "queue wait exceeds budget", budget: 100 * time.Millisecond, maxDelay: 2 * time.Millisecond, depth: 50, drain: 100, reject: true, reason: "queue_wait"},
		{name: "queue wait within budget", budget: time.Second, maxDelay: 2 * time.Millisecond, depth: 50, drain: 100},
		{name: "unprimed drain rate admits", budget: 100 * time.Millisecond, maxDelay: 2 * time.Millisecond, depth: 500, drain: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := checkDeadline(tc.budget, tc.maxDelay, tc.depth, tc.drain)
			if v.reject != tc.reject || (tc.reject && v.reason != tc.reason) {
				t.Fatalf("checkDeadline = %+v, want reject=%v reason=%q", v, tc.reject, tc.reason)
			}
		})
	}
}

func TestParseFormatDeadline(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", nil)
	if _, ok, err := ParseDeadline(req); ok || err != nil {
		t.Fatalf("absent header: ok=%v err=%v", ok, err)
	}
	req.Header.Set(DeadlineHeader, "250")
	if d, ok, err := ParseDeadline(req); !ok || err != nil || d != 250*time.Millisecond {
		t.Fatalf("250ms header parsed as %v/%v/%v", d, ok, err)
	}
	req.Header.Set(DeadlineHeader, "-5")
	if d, ok, err := ParseDeadline(req); !ok || err != nil || d >= 0 {
		t.Fatalf("negative header parsed as %v/%v/%v — should parse (admission rejects it)", d, ok, err)
	}
	req.Header.Set(DeadlineHeader, "soon")
	if _, _, err := ParseDeadline(req); err == nil {
		t.Fatal("malformed header parsed cleanly")
	}
	if got := FormatDeadline(1500 * time.Millisecond); got != "1500" {
		t.Fatalf("FormatDeadline(1.5s) = %q", got)
	}
	// Round down, never up: 900µs of budget is 0 whole milliseconds.
	if got := FormatDeadline(900 * time.Microsecond); got != "0" {
		t.Fatalf("FormatDeadline(900µs) = %q, want 0", got)
	}
	if got := FormatDeadline(-time.Second); got != "0" {
		t.Fatalf("FormatDeadline(-1s) = %q, want 0", got)
	}
}

// A propagated budget below the lane's batch-formation floor must be
// refused at admission — 503 with Retry-After, counted in the registry —
// while the same request with a generous budget is served.
func TestDeadlineAdmission(t *testing.T) {
	m := syntheticModel(t, false)
	reg := NewRegistry()
	if err := reg.Add(m); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Config{Batcher: BatcherConfig{MaxDelay: 4 * time.Millisecond}})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()

	post := func(deadline string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict",
			strings.NewReader(`{"model":"tiny","inputs":[[0,0,0,0,0,0,0,0,0,0,0,0]]}`))
		if deadline != "" {
			req.Header.Set(DeadlineHeader, deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("1"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("1ms budget vs 4ms batch floor: status %d, want 503 at admission", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline rejection carried no Retry-After")
	}
	if resp := post("0"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired budget: status %d, want 503", resp.StatusCode)
	}
	if resp := post("nonsense"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline header: status %d, want 400", resp.StatusCode)
	}
	if resp := post("5000"); resp.StatusCode != http.StatusOK {
		t.Fatalf("generous budget: status %d, want 200", resp.StatusCode)
	}
	if resp := post(""); resp.StatusCode != http.StatusOK {
		t.Fatalf("no deadline header: status %d, want 200", resp.StatusCode)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	for _, want := range []string{
		`rapidnn_serve_deadline_rejected_total{reason="under_batch_floor"} 1`,
		`rapidnn_serve_deadline_rejected_total{reason="expired"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// An armed chaos engine injects on the predict path and is driveable over
// /chaos; a server built without one exposes neither behavior.
func TestServeChaosWiring(t *testing.T) {
	m := syntheticModel(t, false)
	reg := NewRegistry()
	if err := reg.Add(m); err != nil {
		t.Fatal(err)
	}
	eng := chaos.New(5)
	rules, err := chaos.Parse("serve.predict=http:500@2n")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Set(rules); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Config{Chaos: eng})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()

	body := `{"model":"tiny","inputs":[[0,0,0,0,0,0,0,0,0,0,0,0]]}`
	post := func() int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(); got != http.StatusOK {
		t.Fatalf("call 1: %d, want the real answer", got)
	}
	if got := post(); got != http.StatusInternalServerError {
		t.Fatalf("call 2: %d, want the injected 500", got)
	}

	// The admin endpoint clears the fault at runtime.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/chaos", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; i < 4; i++ {
		if got := post(); got != http.StatusOK {
			t.Fatalf("post-clear call %d: %d, want 200", i, got)
		}
	}

	// Without an engine there is no /chaos route at all.
	plain := NewServer(reg, Config{})
	ts2 := httptest.NewServer(plain)
	defer ts2.Close()
	defer plain.Close()
	r2, err := http.Get(ts2.URL + "/chaos")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("/chaos on a chaos-free server: %d, want 404", r2.StatusCode)
	}
}
