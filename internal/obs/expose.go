package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the Prometheus text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered series in the Prometheus text
// exposition format: families sorted by name, series sorted by label set,
// histograms in the cumulative `_bucket`/`_sum`/`_count` form. The output
// is deterministic for a given registry state.
//
// Rendering works from a snapshot taken under the registry lock — the
// series slices and instrument pointers are copied while holding r.mu, so
// a scrape concurrent with lazy registration (e.g. first-predict lane
// creation) never observes a slice append or instrument assignment
// mid-flight. Gauge functions run outside the lock, from the snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type famSnap struct {
		name, help string
		kind       metricKind
		series     []series
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.families))
	for _, fam := range r.families {
		fs := famSnap{name: fam.name, help: fam.help, kind: fam.kind,
			series: make([]series, len(fam.series))}
		for i, s := range fam.series {
			fs.series[i] = *s
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.kind.promType())
		ss := fam.series
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for i := range ss {
			writeSeries(&b, &ss[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, s *series) {
	switch s.kind {
	case kindCounter:
		writeSample(b, s.name, s.labels, "", strconv.FormatUint(s.counter.Value(), 10))
	case kindFloatCounter:
		writeSample(b, s.name, s.labels, "", formatFloat(s.fcounter.Value()))
	case kindGauge:
		writeSample(b, s.name, s.labels, "", formatFloat(s.gauge.Value()))
	case kindGaugeFunc:
		v := 0.0
		if s.gaugeFn != nil {
			v = s.gaugeFn()
		}
		writeSample(b, s.name, s.labels, "", formatFloat(v))
	case kindHistogram:
		// The +Inf sample and _count are derived from the loaded bucket
		// counters rather than h.Count(): a concurrent Observe could have
		// bumped a bucket but not yet the count, and an independently read
		// total could then undercut the last finite cumulative bucket,
		// breaking monotonicity. Summing the loads keeps the cumulative
		// sequence monotonic by construction.
		h := s.hist
		cum := uint64(0)
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			writeSample(b, s.name+"_bucket", s.labels, `le="`+formatFloat(ub)+`"`, strconv.FormatUint(cum, 10))
		}
		cum += h.counts[len(h.bounds)].Load()
		writeSample(b, s.name+"_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
		writeSample(b, s.name+"_sum", s.labels, "", formatFloat(h.Sum()))
		writeSample(b, s.name+"_count", s.labels, "", strconv.FormatUint(cum, 10))
	}
}

// writeSample emits one `name{labels,extra} value` line; extra carries the
// histogram `le` label.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip representation, explicit +Inf/-Inf/NaN spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the help-text escapes of the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
