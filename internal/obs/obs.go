// Package obs is the observability layer of the stack: a stdlib-only
// metrics registry (counters, gauges and fixed-bucket histograms with
// Prometheus text-format exposition) plus lightweight stage tracing (span
// start/stop with labels, exportable to the Chrome trace-event format the
// accelerator simulator already emits).
//
// The design constraint is the hot path: PR 4 pinned the neuron fire and
// the serving round trip at zero heap allocations per operation, and
// instrumentation must not give that back. Every instrument is therefore a
// pre-registered handle — name and labels are resolved once, at
// registration — and every observation is a handful of atomic operations:
// Counter.Add is one atomic add, Histogram.Observe is a bucket scan plus
// three atomic updates, and no observation ever allocates. Exposition and
// trace export are cold paths and may allocate freely.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair attached to a metric series or a span.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone (unregistered) counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float counter (energy joules,
// seconds of work). Add is a CAS loop on the float's bit pattern, so it is
// safe for concurrent use and never allocates.
type FloatCounter struct {
	bits atomic.Uint64
}

// NewFloatCounter returns a standalone (unregistered) float counter.
func NewFloatCounter() *FloatCounter { return &FloatCounter{} }

// Add adds delta.
func (c *FloatCounter) Add(delta float64) {
	for {
		old := c.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket-layout distribution: bucket upper bounds are
// chosen at construction, and Observe is a scan over them plus atomic
// updates to the matching bucket, the count and the sum — no allocation, no
// lock. Exposition renders the Prometheus cumulative form.
type Histogram struct {
	bounds []float64 // sorted upper bounds; the +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    FloatCounter
}

// NewHistogram returns a standalone histogram over the given bucket upper
// bounds, which must be sorted ascending and non-empty.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := len(h.bounds) // +Inf bucket
	for b, ub := range h.bounds {
		if v <= ub {
			i = b
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// ExpBuckets returns n bucket bounds growing geometrically from start by
// factor — the standard latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds from start in steps of width.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets wants n >= 1, width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// metricKind discriminates the series payload.
type metricKind int

const (
	kindCounter metricKind = iota
	kindFloatCounter
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindFloatCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	}
	return "histogram"
}

// series is one registered (name, labels) time series.
type series struct {
	name   string
	labels string // pre-rendered {k="v",...} body without braces, "" when unlabeled
	kind   metricKind

	counter  *Counter
	fcounter *FloatCounter
	gauge    *Gauge
	gaugeFn  func() float64
	hist     *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds named metric series and renders them in the Prometheus
// text exposition format. Registration is idempotent: asking for a series
// that already exists with the same type returns the existing handle, so
// independent components can share a registry without coordination.
// Registration takes a lock; the returned handles never do.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	common   []Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// SetCommonLabels appends the given labels to every series registered from
// now on — the fleet uses it to stamp a replica identity onto every metric a
// server exposes, so scrapes from many replicas aggregate without relabeling.
// Call it before instruments are registered: series that already exist keep
// the labels they were created with.
func (r *Registry) SetCommonLabels(labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.common = append([]Label(nil), labels...)
}

// lookup finds or creates the (name, labels) series of the given kind and
// runs init on it while still holding r.mu, so instrument creation and the
// check-and-assign of the instrument field are atomic with the series
// lookup — two goroutines racing to register the same series always end up
// sharing one instrument handle. Type conflicts on a name are programmer
// errors and panic.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, init func(*series)) *series {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.common) > 0 {
		labels = append(append([]Label(nil), labels...), r.common...)
	}
	lbl := renderLabels(labels)
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, fam.kind.promType(), kind.promType()))
	}
	s := (*series)(nil)
	for _, have := range fam.series {
		if have.labels == lbl {
			s = have
			break
		}
	}
	if s == nil {
		s = &series{name: name, labels: lbl, kind: kind}
		fam.series = append(fam.series, s)
	}
	init(s)
	return s
}

// Counter registers (or finds) an integer counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func(s *series) {
		if s.counter == nil {
			s.counter = NewCounter()
		}
	})
	return s.counter
}

// FloatCounter registers (or finds) a float counter series.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	s := r.lookup(name, help, kindFloatCounter, labels, func(s *series) {
		if s.fcounter == nil {
			s.fcounter = NewFloatCounter()
		}
	})
	return s.fcounter
}

// Gauge registers (or finds) a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func(s *series) {
		if s.gauge == nil {
			s.gauge = NewGauge()
		}
	})
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is sampled from fn at
// exposition time — the natural shape for instantaneous state owned
// elsewhere (queue depth, uptime). Re-registering the same series replaces
// the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindGaugeFunc, labels, func(s *series) {
		s.gaugeFn = fn
	})
}

// Histogram registers (or finds) a histogram series with the given fixed
// bucket bounds. A pre-existing series keeps its original layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func(s *series) {
		if s.hist == nil {
			s.hist = NewHistogram(bounds)
		}
	})
	return s.hist
}

// mustValidName panics unless name is a valid Prometheus metric name.
func mustValidName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// renderLabels pre-renders a label set as `k1="v1",k2="v2"` with keys in
// sorted order, so identical sets always produce identical series keys.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if l.Key == "" {
			panic("obs: empty label key")
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
