package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Tracer records stage spans — named intervals on named tracks, with
// optional labels — into a fixed-capacity buffer. Starting and ending a
// span is a time read plus one atomic slot reservation; when the buffer is
// full further spans are counted as dropped instead of growing memory, so a
// tracer can stay attached to a long-running server. A nil *Tracer is a
// valid no-op: Start returns an inert Span, so instrumented code needs no
// guards.
//
// The buffer is written lock-free; export with WriteChromeTrace only after
// the traced work has quiesced (workers joined, batcher drained).
type Tracer struct {
	epoch   time.Time
	events  []spanEvent
	n       atomic.Int64
	dropped atomic.Uint64
}

type spanEvent struct {
	track, name string
	labels      []Label
	startUS     int64
	durUS       int64
}

// NewTracer returns a tracer holding at most capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{epoch: time.Now(), events: make([]spanEvent, capacity)}
}

// Span is one in-flight interval; End records it. The zero Span (from a nil
// tracer) is inert.
type Span struct {
	t           *Tracer
	track, name string
	labels      []Label
	start       time.Time
}

// Start opens a span on the given track. Labels are attached to the
// recorded event; passing none performs no allocation, so a disabled
// (nil-tracer) call site costs only the nil check.
func (t *Tracer) Start(track, name string, labels ...Label) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, track: track, name: name, labels: labels, start: time.Now()}
}

// End records the span. Safe on the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := time.Now()
	i := s.t.n.Add(1) - 1
	if i >= int64(len(s.t.events)) {
		s.t.dropped.Add(1)
		return
	}
	s.t.events[i] = spanEvent{
		track:   s.track,
		name:    s.name,
		labels:  s.labels,
		startUS: s.start.Sub(s.t.epoch).Microseconds(),
		durUS:   end.Sub(s.start).Microseconds(),
	}
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := int(t.n.Load())
	if n > len(t.events) {
		n = len(t.events)
	}
	return n
}

// Dropped returns how many spans were discarded because the buffer was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// WriteChromeTrace exports the recorded spans in the Chrome trace-event
// format (load at chrome://tracing or https://ui.perfetto.dev): one track
// (thread) per distinct track name, one slice per span, labels as slice
// args. Tracks are numbered in sorted-name order and the event stream is
// sorted by (timestamp, track, name), so the file is deterministic for a
// given set of recorded spans.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	type traceEvent struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   int64             `json:"ts"`
		Dur  int64             `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	n := t.Len()
	tidOf := make(map[string]int)
	tracks := make([]string, 0, 8)
	for i := 0; i < n; i++ {
		if _, ok := tidOf[t.events[i].track]; !ok {
			tidOf[t.events[i].track] = 0
			tracks = append(tracks, t.events[i].track)
		}
	}
	sort.Strings(tracks)
	for i, name := range tracks {
		tidOf[name] = i
	}
	events := make([]traceEvent, 0, n+len(tracks))
	for i := 0; i < n; i++ {
		e := t.events[i]
		ev := traceEvent{
			Name: e.name,
			Cat:  "obs-span",
			Ph:   "X",
			Ts:   e.startUS,
			Dur:  e.durUS,
			Pid:  1,
			Tid:  tidOf[e.track],
		}
		if len(e.labels) > 0 {
			ev.Args = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				ev.Args[l.Key] = l.Value
			}
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Name < events[j].Name
	})
	meta := make([]traceEvent, 0, len(tracks))
	for i, name := range tracks {
		meta = append(meta, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  i,
			Args: map[string]string{"name": name},
		})
	}
	return json.NewEncoder(w).Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{append(meta, events...)})
}
