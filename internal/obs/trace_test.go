package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start("layer0", "dense", L("rows", "4"))
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Start("layer1", "pool").End()
	if tr.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", tr.Len())
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", tr.Dropped())
	}
	e := tr.events[0]
	if e.track != "layer0" || e.name != "dense" || e.durUS < 1 {
		t.Fatalf("first span = %+v", e)
	}
}

func TestTracerBoundedCapacity(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start("t", "s").End()
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4 (capacity)", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start("worker", "span").End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len = %d, want 800", tr.Len())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	tr.Start("beta", "b-span").End()
	tr.Start("alpha", "a-span", L("k", "v")).End()
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Two metadata events (sorted tracks: alpha=0, beta=1) plus two spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4:\n%s", len(doc.TraceEvents), b.String())
	}
	meta := map[int]string{}
	var spans int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta[e.Tid] = e.Args["name"]
		case "X":
			spans++
			if e.Name == "a-span" {
				if e.Tid != 0 || e.Args["k"] != "v" {
					t.Fatalf("a-span on tid %d with args %v", e.Tid, e.Args)
				}
			}
		}
	}
	if spans != 2 || meta[0] != "alpha" || meta[1] != "beta" {
		t.Fatalf("spans=%d meta=%v", spans, meta)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("t", "s", L("a", "b"))
	sp.End() // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reported spans")
	}
	Span{}.End() // zero span is inert too
}
