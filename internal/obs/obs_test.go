package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeFloatCounter(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	f := NewFloatCounter()
	f.Add(1.5)
	f.Add(2.25)
	if f.Value() != 3.75 {
		t.Fatalf("float counter = %v, want 3.75", f.Value())
	}
	g := NewGauge()
	g.Set(7)
	g.Add(-2.5)
	if g.Value() != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", g.Value())
	}
}

// The instruments must stay exact under concurrent bumps — they are the
// serving hot path's only bookkeeping.
func TestInstrumentsConcurrent(t *testing.T) {
	c := NewCounter()
	f := NewFloatCounter()
	h := NewHistogram([]float64{1, 2, 4})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				f.Add(0.5)
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if f.Value() != workers*per*0.5 {
		t.Fatalf("float counter = %v, want %v", f.Value(), workers*per*0.5)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1} // ≤1, (1,5], (5,10], +Inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Sum() != 111.5 {
		t.Fatalf("sum = %v, want 111.5", h.Sum())
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalFloats(exp, want) {
		t.Fatalf("ExpBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(0, 5, 3)
	if want := []float64{0, 5, 10}; !equalFloats(lin, want) {
		t.Fatalf("LinearBuckets = %v, want %v", lin, want)
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Registration is idempotent: the same (name, labels) returns the same
// handle, and distinct label sets are distinct series.
func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("lane", "a"))
	b := r.Counter("x_total", "help", L("lane", "a"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	c := r.Counter("x_total", "help", L("lane", "b"))
	if a == c {
		t.Fatal("distinct labels shared a handle")
	}
	// Label order must not matter.
	d1 := r.Gauge("y", "", L("a", "1"), L("b", "2"))
	d2 := r.Gauge("y", "", L("b", "2"), L("a", "1"))
	if d1 != d2 {
		t.Fatal("label order produced distinct series")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering clash_total as a gauge did not panic")
		}
	}()
	r.Gauge("clash_total", "")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "")
}

// sampleLine matches one exposition sample: name, optional labels, value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (?:[-+]?[0-9].*|[-+]Inf|NaN)$`)

// ParsePrometheusText is the test-side format check shared with the CLI
// end-to-end tests: every line must be a comment or a well-formed sample.
func parsePrometheusText(t *testing.T, text string) map[string]string {
	t.Helper()
	samples := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		samples[line[:i]] = line[i+1:]
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", L("lane", "m/software")).Add(3)
	r.FloatCounter("energy_joules_total", "energy").Add(0.5)
	r.Gauge("depth", "queue depth").Set(7)
	r.GaugeFunc("uptime_seconds", "uptime", func() float64 { return 12.5 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01}, L("lane", "m/software"))
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples := parsePrometheusText(t, out)

	checks := map[string]string{
		`req_total{lane="m/software"}`: "3",
		`energy_joules_total`:          "0.5",
		`depth`:                        "7",
		`uptime_seconds`:               "12.5",
		`lat_seconds_bucket{lane="m/software",le="0.001"}`: "1",
		`lat_seconds_bucket{lane="m/software",le="0.01"}`:  "2",
		`lat_seconds_bucket{lane="m/software",le="+Inf"}`:  "3",
		`lat_seconds_count{lane="m/software"}`:             "3",
	}
	for key, want := range checks {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("sample %s = %q (present %v), want %q\nfull output:\n%s", key, got, ok, want, out)
		}
	}
	for _, want := range []string{"# TYPE req_total counter", "# TYPE lat_seconds histogram", "# HELP depth queue depth"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition output is not deterministic")
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		2.5:          "2.5",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("v", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{v="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample missing; got:\n%s", b.String())
	}
}

// Regression: two goroutines racing to register the same (name, labels)
// series must share one instrument handle — instrument creation happens
// under the registry lock, so no handle (and none of its increments) can
// be silently dropped.
func TestRegistryConcurrentRegistrationSharesHandle(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			r.Counter("shared_total", "", L("lane", "x")).Inc()
			r.FloatCounter("shared_joules_total", "").Add(1)
			r.Histogram("shared_seconds", "", []float64{1, 2}).Observe(0.5)
		}()
	}
	close(start)
	wg.Wait()
	if got := r.Counter("shared_total", "", L("lane", "x")).Value(); got != workers {
		t.Fatalf("counter = %d, want %d (a racing registration dropped a handle)", got, workers)
	}
	if got := r.FloatCounter("shared_joules_total", "").Value(); got != workers {
		t.Fatalf("float counter = %v, want %d", got, workers)
	}
	if got := r.Histogram("shared_seconds", "", []float64{1, 2}).Count(); got != workers {
		t.Fatalf("histogram count = %d, want %d", got, workers)
	}
}

// Regression (run under -race): a /metrics scrape concurrent with lazy
// series registration — the first-predict lane-creation path — must not
// race on the family series slices or instrument fields. WritePrometheus
// snapshots both under the registry lock.
func TestScrapeConcurrentWithRegistration(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				lane := L("lane", string(rune('a'+w))+string(rune('a'+i%8)))
				r.Counter("scrape_req_total", "", lane).Inc()
				r.GaugeFunc("scrape_depth", "", func() float64 { return float64(i) }, lane)
				r.Histogram("scrape_seconds", "", []float64{0.01, 0.1}, lane).Observe(0.05)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if b.Len() > 0 { // the scrape may beat the very first registration
			parsePrometheusText(t, b.String())
		}
	}
	close(done)
	wg.Wait()
}

// The whole point of the handle design: an observation is atomics only.
func TestObservationsDoNotAllocate(t *testing.T) {
	c := NewCounter()
	f := NewFloatCounter()
	g := NewGauge()
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		f.Add(0.25)
		g.Set(4)
		h.Observe(0.05)
	}); allocs != 0 {
		t.Fatalf("observations allocate %v per run, want 0", allocs)
	}
	// A disabled call site (nil tracer) must be free too.
	var tr *Tracer
	if allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start("track", "name")
		sp.End()
	}); allocs != 0 {
		t.Fatalf("nil-tracer span allocates %v per run, want 0", allocs)
	}
}
