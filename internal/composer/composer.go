// Package composer implements the RAPIDNN DNN composer (§3, Fig. 4): the
// offline pipeline that reinterprets a trained full-precision network into a
// memory-compatible model. It clusters each layer's weights and inputs into
// codebooks (parameter clustering), approximates activation functions with
// lookup tables, estimates the reinterpreted model's classification error,
// and retrains the network against the clustered weights until the quality
// criterion is met or the iteration budget is exhausted.
package composer

import (
	"fmt"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Config controls one composition run. DefaultConfig gives the paper's
// operating point (w = u = 64, 64-row activation tables, ≤5 iterations).
type Config struct {
	// WeightClusters (w) and InputClusters (u) are the codebook sizes.
	WeightClusters int
	InputClusters  int
	// ActRows is the activation lookup-table size (64 in the paper).
	ActRows int
	// ActMode selects linear or non-linear table quantization.
	ActMode quant.Mode
	// ReLUAsComparator replaces ReLU tables with the exact comparator the
	// paper recommends (§2.2): "for easy activation functions such as ReLU,
	// our design can replace the lookup table with a simple comparator".
	ReLUAsComparator bool
	// SampleFrac is the fraction of training samples fed forward to collect
	// activation statistics (the paper reports 2 % suffices on full-size
	// datasets; the synthetic sets are smaller so the default is higher).
	SampleFrac float64
	// MaxIterations bounds the cluster→estimate→retrain loop (5 in §3.2).
	MaxIterations int
	// RetrainEpochs is the number of epochs per retraining round.
	RetrainEpochs int
	// Epsilon is the tolerated accuracy loss Δe; iteration stops early once
	// Δe ≤ Epsilon.
	Epsilon float64
	// Retraining hyper-parameters.
	LR        float64
	Momentum  float64
	BatchSize int
	// ShareFraction models RNA-block sharing (§5.6): the fraction of each
	// convolution layer's output channels that share a neighbour's codebook
	// instead of owning one.
	ShareFraction float64
	// UseTreeCodebooks builds each codebook as a hierarchical tree (§3.1,
	// Fig. 5) and selects the deepest level within the cluster budget, so a
	// deployed model can later be re-configured to a shallower level without
	// re-clustering. Flat k-means (the default) fits slightly better at a
	// fixed size.
	UseTreeCodebooks bool
	// LinearCodebooks replaces k-means clustering with uniform grids over
	// the observed value range — the naive quantization the paper argues
	// against (§1, §6: linear lookup quantization costs ~3.3 % top-1 in
	// prior work while clustering recovers the baseline). Kept for the
	// ablation.
	LinearCodebooks bool
	// Canaries is the number of golden self-test vectors embedded in the
	// composed artifact (test-split inputs paired with the reinterpreted
	// model's predictions). 0 keeps the default of 8; negative disables.
	Canaries int
	Seed     int64
	// Trace, when set, records composition stage spans — the statistics
	// feed-forward, each layer's clustering, each iteration's retraining —
	// on the "composer" track. Runtime-only: it never reaches serialized
	// artifacts.
	Trace *obs.Tracer `json:"-"`
}

// DefaultConfig returns the paper's default operating point.
func DefaultConfig() Config {
	return Config{
		WeightClusters:   64,
		InputClusters:    64,
		ActRows:          64,
		ActMode:          quant.NonLinear,
		ReLUAsComparator: true,
		SampleFrac:       0.25,
		MaxIterations:    5,
		RetrainEpochs:    2,
		Epsilon:          0,
		LR:               0.02,
		Momentum:         0.9,
		BatchSize:        32,
		Seed:             1,
	}
}

func (c Config) validate() error {
	if c.WeightClusters < 1 || c.InputClusters < 1 {
		return fmt.Errorf("composer: cluster counts must be ≥1, got w=%d u=%d", c.WeightClusters, c.InputClusters)
	}
	if c.ActRows < 2 {
		return fmt.Errorf("composer: ActRows must be ≥2, got %d", c.ActRows)
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("composer: MaxIterations must be ≥1, got %d", c.MaxIterations)
	}
	if c.SampleFrac <= 0 || c.SampleFrac > 1 {
		return fmt.Errorf("composer: SampleFrac %v out of (0,1]", c.SampleFrac)
	}
	if c.ShareFraction < 0 || c.ShareFraction > 0.9 {
		return fmt.Errorf("composer: ShareFraction %v out of [0,0.9]", c.ShareFraction)
	}
	return nil
}

// IterationStats records one cluster/retrain round (Fig. 6d).
type IterationStats struct {
	Iteration         int
	ClusteredError    float64 // reinterpreted-model error after clustering
	RetrainedEpochs   int     // epochs spent before this evaluation
	AccuracyLossDelta float64 // Δe = clustered − baseline
}

// Composed is the output of the composer: the retrained network, the
// per-layer plans (codebooks and tables) that configure RNA blocks, and the
// quality metrics of the reinterpretation.
type Composed struct {
	Cfg           Config
	Net           *nn.Network // retrained full-precision model
	Plans         []*LayerPlan
	BaselineError float64
	FinalError    float64
	History       []IterationStats
	TotalEpochs   int
	// Canaries are the golden self-test vectors recorded at compose time
	// (canary.go); they ship inside the serialized artifact.
	Canaries []Canary

	// release unmaps the backing file of an mmap-loaded (RAPIDNN2) model;
	// nil for composed or gob-loaded models.
	release func() error
}

// DeltaE returns the accuracy loss Δe = e_clustered − e_baseline (§3.2).
func (c *Composed) DeltaE() float64 { return c.FinalError - c.BaselineError }

// Mapped reports whether the model borrows its tables from a file mapping —
// i.e. it was loaded via OpenFlat/LoadFile from a RAPIDNN2 artifact.
func (c *Composed) Mapped() bool { return c.release != nil }

// Close releases the file mapping behind an mmap-loaded model. After Close,
// the model and everything built from it — reinterpreted predictors,
// lowered hardware networks, borrowed canary inputs — must not be used:
// their table views die with the mapping. Close is a no-op (and safe to call
// any number of times) on models that own their memory.
func (c *Composed) Close() error {
	if c == nil || c.release == nil {
		return nil
	}
	rel := c.release
	c.release = nil
	return rel()
}

// Compose reinterprets net for in-memory execution. The input network is not
// modified; the returned Composed holds a retrained clone. The dataset's
// training split provides clustering statistics and retraining batches; the
// test split provides error estimates.
func Compose(net *nn.Network, ds *dataset.Dataset, cfg Config) (*Composed, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	work := nn.CloneNetwork(net)
	baseErr := work.ErrorRate(ds.TestX, ds.TestY, 64)

	out := &Composed{Cfg: cfg, BaselineError: baseErr}
	best := nnSnapshot{err: 2} // sentinel worse than any real error rate
	opt := &nn.SGD{LR: cfg.LR, Momentum: cfg.Momentum}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		iterSp := cfg.Trace.Start("composer", "iteration",
			obs.L("iter", strconv.Itoa(iter)))
		plans, err := BuildPlans(work, ds, cfg, iter)
		if err != nil {
			return nil, err
		}
		re := NewReinterpreted(work, plans)
		estSp := cfg.Trace.Start("composer", "estimate_error")
		clErr := re.ErrorRate(ds.TestX, ds.TestY, 64)
		estSp.End()
		out.History = append(out.History, IterationStats{
			Iteration:         iter,
			ClusteredError:    clErr,
			RetrainedEpochs:   out.TotalEpochs,
			AccuracyLossDelta: clErr - baseErr,
		})
		if clErr < best.err {
			best = nnSnapshot{net: nn.CloneNetwork(work), plans: plans, err: clErr}
		}
		if clErr-baseErr <= cfg.Epsilon {
			iterSp.End()
			break
		}
		if iter == cfg.MaxIterations-1 {
			iterSp.End()
			break
		}
		// Retrain from the clustered weights so the model adapts to the
		// codebook ("the model is retrained under the modified condition",
		// §3.2). Quantize in place, then run full-precision SGD.
		retrainSp := cfg.Trace.Start("composer", "retrain")
		QuantizeWeightsInPlace(work, plans)
		for e := 0; e < max(1, cfg.RetrainEpochs); e++ {
			ds.Batches(batch, func(x *tensor.Tensor, labels []int) {
				work.TrainBatch(x, labels, opt)
			})
			out.TotalEpochs++
		}
		retrainSp.End()
		iterSp.End()
	}
	out.Net = best.net
	out.Plans = best.plans
	out.FinalError = best.err
	if n := cfg.canaryCount(); n > 0 {
		out.Canaries = buildCanaries(out, ds, n)
	}
	return out, nil
}

// canaryCount resolves the Canaries knob: 0 means the default of 8,
// negative disables embedding.
func (c Config) canaryCount() int {
	if c.Canaries < 0 {
		return 0
	}
	if c.Canaries == 0 {
		return 8
	}
	return c.Canaries
}

type nnSnapshot struct {
	net   *nn.Network
	plans []*LayerPlan
	err   float64
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
