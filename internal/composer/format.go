package composer

import (
	"fmt"
	"io"
	"os"
)

// Artifact-format identifiers as reported to the serving fleet: the rollout
// controller compares these strings (and the version/checksum the server
// derives per file) against its registry to verify what a replica actually
// serves.
const (
	FormatGob  = "RAPIDNN1" // gob stream (serial.go)
	FormatFlat = "RAPIDNN2" // flat zero-copy layout (flat.go)
)

// FileFormat sniffs which serialization format an artifact file holds
// without loading it: the flat magic selects RAPIDNN2, anything else is the
// RAPIDNN1 gob stream (whose own magic lives inside the encoding and is
// validated at load time).
func FileFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("composer: %w", err)
	}
	defer f.Close()
	var head [8]byte
	n, _ := io.ReadFull(f, head[:])
	if n == len(head) && string(head[:]) == flatMagic {
		return FormatFlat, nil
	}
	return FormatGob, nil
}

// VerifyFile is the registry's push gate: it fully loads the artifact in
// whichever format it holds (exercising every structural validation both
// readers share) and replays its embedded canaries, returning how many
// diverged. The model is released before returning — this is a check, not a
// load.
func VerifyFile(path string) (canariesFailed int, err error) {
	c, err := LoadFile(path)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	return c.CheckCanaries()
}
