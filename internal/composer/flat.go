package composer

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// RAPIDNN2 is the flat, versioned, zero-copy artifact format. The gob stream
// (RAPIDNN1) decodes every table into fresh heap objects; the flat layout
// instead stores the large read-only tables — codebooks, activation-table
// Y/Z columns, canary inputs, and the stride-indexed fixed-point product
// tables the crossbars are configured with (§3.3) — as raw, 8-byte-aligned
// sections that the loader slices straight out of an mmap'd file. Load cost
// is O(sections) regardless of table size, and because the mapping is
// read-only, replicas serving the same artifact on one host share the page
// cache instead of each materializing a private copy.
//
// On-disk layout (all integers in the writer's native byte order; the header
// carries a byte-order mark the reader checks against its own):
//
//	[0:8)   magic "RAPIDNN2"
//	[8:12)  format version (currently 1)
//	[12:16) byte-order mark 0x01020304
//	[16:20) section count N
//	[20:24) CRC-32C of the section table
//	[24:32) total file size in bytes
//	[32:..) section table: N × 24-byte entries {kind u32, crc u32, off u64, len u64}
//	        sections, each starting at an 8-byte-aligned offset
//
// Section 0 is always the gob-encoded metadata (flatMeta): every scalar,
// string and small map, plus typed references {section index, element count}
// into the blob sections. Every other section is a raw little-endian-native
// array of float32 (kind 2) or int64 (kind 3) and carries its own CRC-32C,
// verified at load. Versioning rule: readers reject versions they do not
// know; additive evolution happens by new section kinds (unknown kinds in a
// known version are an error — sections are never silently skipped).
const (
	flatMagic   = "RAPIDNN2"
	flatVersion = 1
	flatBOM     = 0x01020304
	flatAlign   = 8

	flatHeaderSize = 32
	flatEntrySize  = 24

	secMeta uint32 = 1 // gob-encoded flatMeta
	secF32  uint32 = 2 // raw []float32
	secI64  uint32 = 3 // raw []int64
)

// FlatProductFracBits is the fixed-point fraction of the pre-composed
// product tables embedded in RAPIDNN2 artifacts. It must equal the hardware
// path's fixed-point format (rna's hwFracBits) for the lowering to borrow
// the tables; rna cross-checks at build time and falls back to recomputing
// on mismatch.
const FlatProductFracBits uint = 16

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// flatRef points a metadata field at a blob section: the section index and
// the element count the section must hold. The zero ref means "absent"
// (section 0 is the metadata itself, so no blob can legitimately live there).
type flatRef struct {
	Sec   uint32
	Count uint32
}

// flatLayer is layerSnapshot with the weight arrays moved out to sections.
type flatLayer struct {
	Kind string
	Name string
	Act  string
	Skip bool

	In, Out  int
	Geom     tensor.ConvGeom
	OutC     int
	PoolKind int
	Hidden   int
	Steps    int
	Size     int
	Rate     float64

	W, B, Wx, Wh flatRef
}

// flatPlan is planSnapshot with every table moved out to sections, plus the
// pre-composed product tables the gob format never carried.
type flatPlan struct {
	Kind            int
	Index           int
	Name            string
	WeightCodebooks []flatRef
	ChannelCodebook []int32
	InputCodebook   flatRef
	ActName         string
	ActY, ActZ      flatRef
	Neurons, Edges  int
	RawInputs       int
	// Products references one [len(wcb)·len(ucb)] int64 table per weight
	// codebook group; empty for non-compute plans.
	Products []flatRef
}

type flatMeta struct {
	NetName       string
	BaselineError float64
	FinalError    float64
	TotalEpochs   int
	Layers        []flatLayer
	Plans         []flatPlan
	// Canary inputs are packed row-major into one float32 section of
	// len(CanaryPreds)·InSize values.
	CanaryPreds     []int
	CanaryInputs    flatRef
	ProductFracBits uint32
}

// flatBuilder accumulates sections during SaveFlat. Section 0 is reserved
// for the metadata and filled last.
type flatBuilder struct {
	kinds []uint32
	blobs [][]byte
}

func newFlatBuilder() *flatBuilder {
	return &flatBuilder{kinds: []uint32{secMeta}, blobs: [][]byte{nil}}
}

func (fb *flatBuilder) add(kind uint32, data []byte, count int) flatRef {
	if count == 0 {
		return flatRef{}
	}
	fb.kinds = append(fb.kinds, kind)
	fb.blobs = append(fb.blobs, data)
	return flatRef{Sec: uint32(len(fb.blobs) - 1), Count: uint32(count)}
}

func (fb *flatBuilder) addF32(v []float32) flatRef { return fb.add(secF32, f32Bytes(v), len(v)) }
func (fb *flatBuilder) addI64(v []int64) flatRef   { return fb.add(secI64, i64Bytes(v), len(v)) }

// f32Bytes / i64Bytes view a numeric slice as its backing bytes without
// copying; bytesF32 / bytesI64 are the inverse views over (aligned) section
// bytes. The views share memory with their argument.
func f32Bytes(v []float32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

func i64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func bytesF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func bytesI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// productTable pre-computes the crossbar product table for one codebook pair
// at compose time — entry (w,u) at [w·len(ucb)+u]. quant.ToFixed keeps it
// bit-identical to what rna.NewFuncRNA would derive at lowering time.
func productTable(wcb, ucb []float32, frac uint) []int64 {
	t := make([]int64, len(wcb)*len(ucb))
	for wi, wv := range wcb {
		row := t[wi*len(ucb) : (wi+1)*len(ucb)]
		for ui, uv := range ucb {
			row[ui] = quant.ToFixed(float64(wv)*float64(uv), frac)
		}
	}
	return t
}

// planProductTables returns the plan's product tables for embedding: the
// already-loaded tables when they match the current codebooks (the
// flat→flat conversion path), freshly computed ones otherwise.
func planProductTables(p *LayerPlan) [][]int64 {
	if !p.IsCompute() {
		return nil
	}
	if p.ProductFracBits == FlatProductFracBits && len(p.Products) == len(p.WeightCodebooks) {
		ok := true
		for g, tab := range p.Products {
			if len(tab) != len(p.WeightCodebooks[g])*len(p.InputCodebook) {
				ok = false
				break
			}
		}
		if ok {
			return p.Products
		}
	}
	out := make([][]int64, len(p.WeightCodebooks))
	for g, wcb := range p.WeightCodebooks {
		out[g] = productTable(wcb, p.InputCodebook, FlatProductFracBits)
	}
	return out
}

// SaveFlat writes the composed model as a RAPIDNN2 flat artifact, including
// the pre-composed product tables the accelerator is configured with — the
// full §3.3 configuration product, amortized offline exactly as the paper
// amortizes the composer itself (§5.2).
func (c *Composed) SaveFlat(w io.Writer) error {
	fb := newFlatBuilder()
	meta := flatMeta{
		NetName:         c.Net.Name,
		BaselineError:   c.BaselineError,
		FinalError:      c.FinalError,
		TotalEpochs:     c.TotalEpochs,
		ProductFracBits: uint32(FlatProductFracBits),
	}
	for _, l := range c.Net.Layers {
		ls, err := snapshotLayer(l)
		if err != nil {
			return err
		}
		meta.Layers = append(meta.Layers, flatLayer{
			Kind: ls.Kind, Name: ls.Name, Act: ls.Act, Skip: ls.Skip,
			In: ls.In, Out: ls.Out, Geom: ls.Geom, OutC: ls.OutC, PoolKind: ls.PoolKind,
			Hidden: ls.Hidden, Steps: ls.Steps, Size: ls.Size, Rate: ls.Rate,
			W: fb.addF32(ls.W), B: fb.addF32(ls.B), Wx: fb.addF32(ls.Wx), Wh: fb.addF32(ls.Wh),
		})
	}
	for _, p := range c.Plans {
		fp := flatPlan{
			Kind: int(p.Kind), Index: p.Index, Name: p.Name,
			InputCodebook: fb.addF32(p.InputCodebook),
			Neurons:       p.Neurons, Edges: p.Edges, RawInputs: p.RawInputs,
		}
		for _, cb := range p.WeightCodebooks {
			fp.WeightCodebooks = append(fp.WeightCodebooks, fb.addF32(cb))
		}
		for _, b := range p.ChannelCodebook {
			fp.ChannelCodebook = append(fp.ChannelCodebook, int32(b))
		}
		if p.ActTable != nil {
			fp.ActName = p.ActTable.Name
			fp.ActY = fb.addF32(p.ActTable.Y)
			fp.ActZ = fb.addF32(p.ActTable.Z)
		}
		for _, tab := range planProductTables(p) {
			fp.Products = append(fp.Products, fb.addI64(tab))
		}
		meta.Plans = append(meta.Plans, fp)
	}
	if len(c.Canaries) > 0 {
		in := c.Net.InSize()
		flat := make([]float32, 0, len(c.Canaries)*in)
		for _, cn := range c.Canaries {
			if len(cn.Input) != in {
				return fmt.Errorf("composer: canary has %d features, network wants %d", len(cn.Input), in)
			}
			flat = append(flat, cn.Input...)
			meta.CanaryPreds = append(meta.CanaryPreds, cn.Pred)
		}
		meta.CanaryInputs = fb.addF32(flat)
	}
	var metaBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(meta); err != nil {
		return fmt.Errorf("composer: encoding flat metadata: %w", err)
	}
	fb.blobs[0] = metaBuf.Bytes()

	// Lay the sections out back to back, each 8-byte aligned.
	n := len(fb.blobs)
	offsets := make([]uint64, n)
	pos := uint64(flatHeaderSize + n*flatEntrySize)
	for i, b := range fb.blobs {
		pos = (pos + flatAlign - 1) &^ uint64(flatAlign-1)
		offsets[i] = pos
		pos += uint64(len(b))
	}
	file := make([]byte, pos)
	copy(file[0:8], flatMagic)
	ne := binary.NativeEndian
	ne.PutUint32(file[8:12], flatVersion)
	ne.PutUint32(file[12:16], flatBOM)
	ne.PutUint32(file[16:20], uint32(n))
	ne.PutUint64(file[24:32], pos)
	table := file[flatHeaderSize : flatHeaderSize+n*flatEntrySize]
	for i, b := range fb.blobs {
		e := table[i*flatEntrySize:]
		ne.PutUint32(e[0:4], fb.kinds[i])
		ne.PutUint32(e[4:8], crc32.Checksum(b, castagnoli))
		ne.PutUint64(e[8:16], offsets[i])
		ne.PutUint64(e[16:24], uint64(len(b)))
		copy(file[offsets[i]:], b)
	}
	ne.PutUint32(file[20:24], crc32.Checksum(table, castagnoli))
	_, err := w.Write(file)
	return err
}

// flatSec is one parsed and checksum-verified section.
type flatSec struct {
	kind uint32
	data []byte
}

// parseFlat validates the header, section table and every section checksum,
// returning the section views. It touches O(file) bytes for the CRCs but
// allocates only the section index — the views alias data.
func parseFlat(data []byte) ([]flatSec, error) {
	if len(data) < flatHeaderSize {
		return nil, fmt.Errorf("composer: flat artifact truncated: %d bytes, header wants %d", len(data), flatHeaderSize)
	}
	if string(data[0:8]) != flatMagic {
		return nil, fmt.Errorf("composer: not a %s artifact (magic %q)", flatMagic, data[0:8])
	}
	ne := binary.NativeEndian
	if v := ne.Uint32(data[8:12]); v != flatVersion {
		return nil, fmt.Errorf("composer: unsupported %s version %d (reader knows %d)", flatMagic, v, flatVersion)
	}
	if bom := ne.Uint32(data[12:16]); bom != flatBOM {
		return nil, fmt.Errorf("composer: artifact written with foreign byte order (mark %#08x)", bom)
	}
	if size := ne.Uint64(data[24:32]); size != uint64(len(data)) {
		return nil, fmt.Errorf("composer: artifact records %d bytes but holds %d (truncated?)", size, len(data))
	}
	n := int(ne.Uint32(data[16:20]))
	if n < 1 || n > (len(data)-flatHeaderSize)/flatEntrySize {
		return nil, fmt.Errorf("composer: implausible section count %d for %d bytes", n, len(data))
	}
	table := data[flatHeaderSize : flatHeaderSize+n*flatEntrySize]
	if got, want := crc32.Checksum(table, castagnoli), ne.Uint32(data[20:24]); got != want {
		return nil, fmt.Errorf("composer: section table checksum mismatch (%#08x vs %#08x)", got, want)
	}
	tableEnd := uint64(flatHeaderSize + n*flatEntrySize)
	secs := make([]flatSec, n)
	for i := 0; i < n; i++ {
		e := table[i*flatEntrySize:]
		kind := ne.Uint32(e[0:4])
		crc := ne.Uint32(e[4:8])
		off := ne.Uint64(e[8:16])
		length := ne.Uint64(e[16:24])
		switch kind {
		case secMeta, secF32, secI64:
		default:
			return nil, fmt.Errorf("composer: section %d has unknown kind %d", i, kind)
		}
		if off%flatAlign != 0 {
			return nil, fmt.Errorf("composer: section %d misaligned at offset %d", i, off)
		}
		if off < tableEnd || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("composer: section %d [%d:+%d) outside the %d-byte file", i, off, length, len(data))
		}
		b := data[off : off+length]
		if got := crc32.Checksum(b, castagnoli); got != crc {
			return nil, fmt.Errorf("composer: section %d checksum mismatch (%#08x vs %#08x)", i, got, crc)
		}
		secs[i] = flatSec{kind: kind, data: b}
	}
	if secs[0].kind != secMeta {
		return nil, fmt.Errorf("composer: section 0 has kind %d, want metadata", secs[0].kind)
	}
	return secs, nil
}

// flatReader resolves metadata references against the parsed sections.
type flatReader struct{ secs []flatSec }

func (fr *flatReader) bytes(ref flatRef, kind uint32, elem int, what string) ([]byte, error) {
	if ref.Sec == 0 {
		if ref.Count != 0 {
			return nil, fmt.Errorf("%s references the metadata section", what)
		}
		return nil, nil
	}
	if int(ref.Sec) >= len(fr.secs) {
		return nil, fmt.Errorf("%s references section %d of %d", what, ref.Sec, len(fr.secs))
	}
	s := fr.secs[ref.Sec]
	if s.kind != kind {
		return nil, fmt.Errorf("%s references a kind-%d section, want kind %d", what, s.kind, kind)
	}
	if uint64(len(s.data)) != uint64(ref.Count)*uint64(elem) {
		return nil, fmt.Errorf("%s wants %d elements but section %d holds %d bytes", what, ref.Count, ref.Sec, len(s.data))
	}
	return s.data, nil
}

func (fr *flatReader) f32(ref flatRef, what string) ([]float32, error) {
	b, err := fr.bytes(ref, secF32, 4, what)
	return bytesF32(b), err
}

func (fr *flatReader) i64(ref flatRef, what string) ([]int64, error) {
	b, err := fr.bytes(ref, secI64, 8, what)
	return bytesI64(b), err
}

// LoadFlat restores a composed model from an in-memory RAPIDNN2 artifact.
// The returned model borrows every large table — codebooks, activation
// columns, product tables, canary inputs — directly from data, so data must
// stay live (and unmodified) until the model is no longer used. For a
// file-backed mapping with an explicit unmap, use OpenFlat / LoadFile.
func LoadFlat(data []byte) (*Composed, error) {
	return loadFlatData(data, nil)
}

func loadFlatData(data []byte, release func() error) (c *Composed, err error) {
	// Zero-copy views require the 8-byte alignment the format guarantees
	// relative to the file start; realign defensively if the caller's buffer
	// is offset (mmap and Go heap allocations never are).
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%flatAlign != 0 {
		data = append(make([]byte, 0, len(data)), data...)
	}
	// Layer constructors size tensors from decoded fields; like the gob
	// reader, any internally inconsistent state that slips past the explicit
	// checks must surface as an error, not a panic.
	defer func() {
		if p := recover(); p != nil {
			c, err = nil, fmt.Errorf("composer: corrupted flat artifact: %v", p)
		}
	}()
	secs, err := parseFlat(data)
	if err != nil {
		return nil, err
	}
	var meta flatMeta
	if err := gob.NewDecoder(bytes.NewReader(secs[0].data)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("composer: decoding flat metadata: %w", err)
	}
	fr := &flatReader{secs: secs}
	net := nn.NewNetwork(meta.NetName)
	for i, fl := range meta.Layers {
		ls := layerSnapshot{
			Kind: fl.Kind, Name: fl.Name, Act: fl.Act, Skip: fl.Skip,
			In: fl.In, Out: fl.Out, Geom: fl.Geom, OutC: fl.OutC, PoolKind: fl.PoolKind,
			Hidden: fl.Hidden, Steps: fl.Steps, Size: fl.Size, Rate: fl.Rate,
		}
		for _, f := range []struct {
			dst  *[]float32
			ref  flatRef
			name string
		}{
			{&ls.W, fl.W, "weight"}, {&ls.B, fl.B, "bias"},
			{&ls.Wx, fl.Wx, "input-weight"}, {&ls.Wh, fl.Wh, "hidden-weight"},
		} {
			v, err := fr.f32(f.ref, f.name)
			if err != nil {
				return nil, fmt.Errorf("composer: layer %d (%s): %w", i, fl.Name, err)
			}
			*f.dst = v
		}
		l, err := restoreLayer(ls)
		if err != nil {
			return nil, fmt.Errorf("composer: layer %d (%s): %w", i, fl.Name, err)
		}
		net.Add(l)
	}
	c = &Composed{
		Net:           net,
		BaselineError: meta.BaselineError,
		FinalError:    meta.FinalError,
		TotalEpochs:   meta.TotalEpochs,
	}
	for i, fp := range meta.Plans {
		p := &LayerPlan{
			Kind: LayerKind(fp.Kind), Index: fp.Index, Name: fp.Name,
			Neurons: fp.Neurons, Edges: fp.Edges, RawInputs: fp.RawInputs,
			ProductFracBits: uint(meta.ProductFracBits),
		}
		var err error
		if p.InputCodebook, err = fr.f32(fp.InputCodebook, "input codebook"); err != nil {
			return nil, fmt.Errorf("composer: plan %d (%s): %w", i, fp.Name, err)
		}
		for g, ref := range fp.WeightCodebooks {
			cb, err := fr.f32(ref, fmt.Sprintf("weight codebook %d", g))
			if err != nil {
				return nil, fmt.Errorf("composer: plan %d (%s): %w", i, fp.Name, err)
			}
			p.WeightCodebooks = append(p.WeightCodebooks, cb)
		}
		if len(fp.ChannelCodebook) > 0 {
			p.ChannelCodebook = make([]int, len(fp.ChannelCodebook))
			for ch, b := range fp.ChannelCodebook {
				p.ChannelCodebook[ch] = int(b)
			}
		}
		if fp.ActY.Sec != 0 || fp.ActY.Count != 0 {
			y, err := fr.f32(fp.ActY, "activation Y column")
			if err != nil {
				return nil, fmt.Errorf("composer: plan %d (%s): %w", i, fp.Name, err)
			}
			z, err := fr.f32(fp.ActZ, "activation Z column")
			if err != nil {
				return nil, fmt.Errorf("composer: plan %d (%s): %w", i, fp.Name, err)
			}
			p.ActTable = &quant.ActTable{Name: fp.ActName, Y: y, Z: z}
		}
		for g, ref := range fp.Products {
			tab, err := fr.i64(ref, fmt.Sprintf("product table %d", g))
			if err != nil {
				return nil, fmt.Errorf("composer: plan %d (%s): %w", i, fp.Name, err)
			}
			p.Products = append(p.Products, tab)
		}
		c.Plans = append(c.Plans, p)
	}
	if len(meta.CanaryPreds) > 0 {
		in := net.InSize()
		flat, err := fr.f32(meta.CanaryInputs, "canary inputs")
		if err != nil {
			return nil, fmt.Errorf("composer: %w", err)
		}
		if len(flat) != len(meta.CanaryPreds)*in {
			return nil, fmt.Errorf("composer: %d canary input values for %d canaries of %d features",
				len(flat), len(meta.CanaryPreds), in)
		}
		for ci, pred := range meta.CanaryPreds {
			c.Canaries = append(c.Canaries, Canary{
				Input: flat[ci*in : (ci+1)*in : (ci+1)*in],
				Pred:  pred,
			})
		}
	}
	if err := validateComposed(c); err != nil {
		return nil, err
	}
	c.release = release
	return c, nil
}

// OpenFlat maps a RAPIDNN2 artifact file read-only and restores the model
// over the mapping: every table is a view into the page cache, shared with
// any other process serving the same file. The caller must Close the model
// once nothing built from it (reinterpreted predictors, lowered hardware
// networks) is in use — Close unmaps the file and every borrowed view dies
// with it.
func OpenFlat(path string) (*Composed, error) {
	data, release, err := mmapFile(path)
	if err != nil {
		return nil, fmt.Errorf("composer: mapping %s: %w", path, err)
	}
	c, err := loadFlatData(data, release)
	if err != nil {
		release()
		return nil, err
	}
	return c, nil
}

// LoadFile restores a composed model from disk in whichever format the file
// holds: RAPIDNN2 artifacts are mmap'd zero-copy (OpenFlat), gob artifacts
// are decoded. Callers should Close the model when done; for gob-backed
// models Close is a no-op.
func LoadFile(path string) (*Composed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("composer: %w", err)
	}
	var head [8]byte
	n, _ := io.ReadFull(f, head[:])
	if n == len(head) && string(head[:]) == flatMagic {
		f.Close()
		return OpenFlat(path)
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("composer: %w", err)
	}
	return Load(f)
}

// Convert transcodes an artifact between formats: it loads from r (either
// magic) and writes to w as RAPIDNN2 when flat is true, as the gob stream
// otherwise. Converting gob→flat composes the product tables the flat
// format embeds; converting flat→gob drops them (the gob schema never
// carried any).
func Convert(r io.Reader, w io.Writer, flat bool) error {
	c, err := Load(r)
	if err != nil {
		return err
	}
	if flat {
		return c.SaveFlat(w)
	}
	return c.Save(w)
}
