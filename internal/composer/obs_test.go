package composer

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// A traced composition must record the statistics feed-forward, every
// layer's clustering, and the iteration/retrain stages, and the spans must
// export as a Chrome trace.
func TestComposeRecordsStageSpans(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.Trace = obs.NewTracer(1024)
	if _, err := Compose(net, ds, cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Trace.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	var b strings.Builder
	if err := cfg.Trace.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"statistics"`, `"iteration"`, `"estimate_error"`, `"cluster:`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s span:\n%s", want, out[:min(len(out), 2000)])
		}
	}
}

// BuildPlans must stay bit-identical with and without a tracer attached.
func TestBuildPlansUnaffectedByTracing(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	plain, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = obs.NewTracer(256)
	traced, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(traced) {
		t.Fatalf("plan counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		a, b := plain[i], traced[i]
		if len(a.WeightCodebooks) != len(b.WeightCodebooks) {
			t.Fatalf("layer %d codebook counts differ", i)
		}
		for g := range a.WeightCodebooks {
			for j := range a.WeightCodebooks[g] {
				if a.WeightCodebooks[g][j] != b.WeightCodebooks[g][j] {
					t.Fatalf("layer %d group %d entry %d diverged under tracing", i, g, j)
				}
			}
		}
	}
}
