package composer

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// fuzzSeedArtifact serializes a small hand-built composed model — a valid
// artifact the fuzzer mutates from, so coverage starts inside the decoder
// rather than at the magic check.
func fuzzSeedArtifact(tb testing.TB) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(61))
	net := nn.NewNetwork("fuzz").
		Add(nn.NewDense("fc", 6, 5, nn.ReLU{}, rng)).
		Add(nn.NewDense("out", 5, 3, nn.Identity{}, rng))
	c := &Composed{Net: net, Plans: SyntheticPlans(net, 8, 8, 16), BaselineError: 0.1, FinalError: 0.12}
	c.SynthesizeCanaries(3, 61)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedFlat is fuzzSeedArtifact's RAPIDNN2 twin.
func fuzzSeedFlat(tb testing.TB) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(62))
	net := nn.NewNetwork("fuzz-flat").
		Add(nn.NewDense("fc", 6, 5, nn.Sigmoid{}, rng)).
		Add(nn.NewDense("out", 5, 3, nn.Identity{}, rng))
	c := &Composed{Net: net, Plans: SyntheticPlans(net, 8, 8, 16), BaselineError: 0.1, FinalError: 0.12}
	c.SynthesizeCanaries(3, 62)
	var buf bytes.Buffer
	if err := c.SaveFlat(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad hammers the artifact loader with arbitrary byte streams. The
// contract under fuzz: Load never panics (corrupted snapshots surface as
// errors) and always returns exactly one of a model or an error. Load
// sniffs the format, so flat seeds exercise the RAPIDNN2 path through the
// same entry point.
func FuzzLoad(f *testing.F) {
	valid := fuzzSeedArtifact(f)
	f.Add(valid)
	// Truncations and point corruptions of the valid stream seed the mutator
	// with near-valid inputs that reach deep decoder states.
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("RAPIDNN1"))
	f.Add([]byte("not a model at all"))
	f.Add(fuzzSeedFlat(f))
	f.Add([]byte(flatMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Load(bytes.NewReader(data))
		if err == nil && c == nil {
			t.Fatal("Load returned neither a model nor an error")
		}
		if err != nil && c != nil {
			t.Fatal("Load returned a model alongside an error")
		}
		if c != nil && len(c.Plans) != len(c.Net.Layers) {
			t.Fatalf("accepted model has %d plans for %d layers", len(c.Plans), len(c.Net.Layers))
		}
	})
}

// FuzzLoadFlat drives the RAPIDNN2 reader directly with arbitrary bytes:
// header parsing, the section table, checksum verification and the
// reference-resolving metadata decode must never panic, and the validated
// model invariant holds whenever an input is accepted.
func FuzzLoadFlat(f *testing.F) {
	valid := fuzzSeedFlat(f)
	f.Add(valid)
	f.Add(valid[:flatHeaderSize])   // header only
	f.Add(valid[:len(valid)/2])     // cut inside the sections
	f.Add(valid[:flatHeaderSize+8]) // cut inside the section table
	flipped := append([]byte(nil), valid...)
	flipped[flatHeaderSize+4] ^= 0x80 // corrupt a table entry CRC field
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(flatMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := LoadFlat(data)
		if err == nil && c == nil {
			t.Fatal("LoadFlat returned neither a model nor an error")
		}
		if err != nil && c != nil {
			t.Fatal("LoadFlat returned a model alongside an error")
		}
		if c != nil && len(c.Plans) != len(c.Net.Layers) {
			t.Fatalf("accepted model has %d plans for %d layers", len(c.Plans), len(c.Net.Layers))
		}
	})
}
