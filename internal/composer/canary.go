package composer

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// Canaries are golden self-test vectors embedded in a composed artifact at
// compose time: real inputs paired with the reinterpreted model's own
// prediction for each. A serving layer replays them periodically against the
// model it is actually executing — any divergence means the deployed copy no
// longer computes what the composer shipped (disk corruption, a bad reload,
// or accumulated substrate faults) and the model should be taken out of
// rotation until it is scrubbed.
type Canary struct {
	// Input is one input vector, InSize features.
	Input []float32
	// Pred is the reinterpreted model's argmax class for Input at compose
	// time — the golden answer.
	Pred int
}

// buildCanaries records n golden vectors spread evenly across the test
// split, labeled with the composed model's own reinterpreted predictions.
func buildCanaries(c *Composed, ds *dataset.Dataset, n int) []Canary {
	rows := ds.TestX.Dim(0)
	if rows == 0 || n <= 0 {
		return nil
	}
	if n > rows {
		n = rows
	}
	re := NewReinterpreted(c.Net, c.Plans)
	in := ds.InSize()
	stride := rows / n
	out := make([]Canary, 0, n)
	for i := 0; i < n; i++ {
		row := i * stride
		x := append([]float32(nil), ds.TestX.Data()[row*in:(row+1)*in]...)
		pred := re.Predict(tensor.FromSlice(x, 1, in))[0]
		out = append(out, Canary{Input: x, Pred: pred})
	}
	return out
}

// SynthesizeCanaries equips a model that carries no canaries — an artifact
// composed before canaries existed, or a demo model built without a dataset
// — with n deterministic pseudo-random golden vectors labeled by the model's
// own predictions. Models that already carry canaries are left untouched.
func (c *Composed) SynthesizeCanaries(n int, seed int64) {
	if len(c.Canaries) > 0 || n <= 0 {
		return
	}
	in := c.Net.InSize()
	rng := rand.New(rand.NewSource(seed))
	re := NewReinterpreted(c.Net, c.Plans)
	for i := 0; i < n; i++ {
		x := make([]float32, in)
		for j := range x {
			x[j] = rng.Float32()*2 - 1
		}
		pred := re.Predict(tensor.FromSlice(x, 1, in))[0]
		c.Canaries = append(c.Canaries, Canary{Input: x, Pred: pred})
	}
}

// CheckCanaries replays every canary through the model's software
// reinterpreted path and returns the number of divergent answers. It is the
// reference self-test; serving layers with a hardware path compare against
// their own golden captures instead.
func (c *Composed) CheckCanaries() (failed int, err error) {
	if len(c.Canaries) == 0 {
		return 0, fmt.Errorf("composer: model carries no canaries")
	}
	re := NewReinterpreted(c.Net, c.Plans)
	in := c.Net.InSize()
	for _, cn := range c.Canaries {
		if len(cn.Input) != in {
			return 0, fmt.Errorf("composer: canary has %d features, model wants %d", len(cn.Input), in)
		}
		if re.Predict(tensor.FromSlice(append([]float32(nil), cn.Input...), 1, in))[0] != cn.Pred {
			failed++
		}
	}
	return failed, nil
}
