//go:build unix

package composer

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the mapping plus a release
// function that unmaps it. An empty file yields a nil slice and a no-op
// release (mmap of length 0 is an error on Linux).
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to map: %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
