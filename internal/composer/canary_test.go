package composer

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// Compose must embed canaries that the model itself passes, and they must
// survive a serialization round trip.
func TestComposeEmbedsCanaries(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.MaxIterations = 1
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Canaries) != 8 {
		t.Fatalf("composed model carries %d canaries, want the default 8", len(c.Canaries))
	}
	if failed, err := c.CheckCanaries(); err != nil || failed != 0 {
		t.Fatalf("fresh model fails its own canaries: failed=%d err=%v", failed, err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Canaries) != len(c.Canaries) {
		t.Fatalf("canaries lost in round trip: %d vs %d", len(loaded.Canaries), len(c.Canaries))
	}
	if failed, err := loaded.CheckCanaries(); err != nil || failed != 0 {
		t.Fatalf("loaded model fails its canaries: failed=%d err=%v", failed, err)
	}
}

// A negative knob disables embedding; SynthesizeCanaries then fills the gap
// deterministically and never overwrites existing canaries.
func TestCanaryKnobAndSynthesis(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.MaxIterations = 1
	cfg.Canaries = -1
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Canaries) != 0 {
		t.Fatalf("disabled canaries still embedded %d", len(c.Canaries))
	}
	c.SynthesizeCanaries(5, 9)
	if len(c.Canaries) != 5 {
		t.Fatalf("synthesized %d canaries, want 5", len(c.Canaries))
	}
	first := append([]float32(nil), c.Canaries[0].Input...)
	c.SynthesizeCanaries(3, 1234) // must be a no-op: canaries exist
	if len(c.Canaries) != 5 || c.Canaries[0].Input[0] != first[0] {
		t.Fatal("SynthesizeCanaries overwrote existing canaries")
	}
	if failed, err := c.CheckCanaries(); err != nil || failed != 0 {
		t.Fatalf("model fails synthesized canaries: failed=%d err=%v", failed, err)
	}
}

// A model whose weights were tampered with after the canaries were recorded
// must fail its self-test — the corruption signal the serving layer acts on.
func TestCanariesDetectTampering(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.MaxIterations = 1
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Net.Layers[0].(*nn.Dense).W.Value.Data()
	rng := rand.New(rand.NewSource(77))
	for i := range w {
		w[i] = rng.Float32()*10 - 5
	}
	failed, err := c.CheckCanaries()
	if err != nil {
		t.Fatal(err)
	}
	if failed == 0 {
		t.Fatal("scrambled weights passed every canary")
	}
}

// Load must reject artifacts whose canaries disagree with the network shape.
func TestLoadRejectsMalformedCanaries(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	net := nn.NewNetwork("m").Add(nn.NewDense("out", 4, 2, nn.Identity{}, rng))
	c := &Composed{Net: net, Plans: SyntheticPlans(net, 4, 4, 8)}
	for _, bad := range []Canary{
		{Input: []float32{1, 2}, Pred: 0},        // wrong width
		{Input: []float32{1, 2, 3, 4}, Pred: 7},  // class out of range
		{Input: []float32{1, 2, 3, 4}, Pred: -1}, // negative class
	} {
		c.Canaries = []Canary{bad}
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(&buf); err == nil {
			t.Fatalf("malformed canary %+v accepted", bad)
		}
	}
}
