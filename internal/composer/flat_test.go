package composer

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// flatFixture builds a small multi-kind composed model and returns it with
// its RAPIDNN2 encoding.
func flatFixture(t testing.TB) (*Composed, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	pg := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 2, KW: 2, Stride: 2}
	net := nn.NewNetwork("flat-kinds").
		Add(nn.NewConv2D("cv", g, 2, nn.Sigmoid{}, rng)).
		Add(nn.NewPool2D("pl", nn.MaxPool, pg)).
		Add(nn.NewDense("fc", 18, 18, nn.Tanh{}, rng)).
		Add(nn.NewDropout("do", 18, 0.1, rng)).
		Add(nn.NewDense("out", 18, 3, nn.Identity{}, rng))
	c := &Composed{Net: net, Plans: SyntheticPlans(net, 8, 8, 16),
		BaselineError: 0.1, FinalError: 0.12, TotalEpochs: 3}
	c.SynthesizeCanaries(3, 71)
	var buf bytes.Buffer
	if err := c.SaveFlat(&buf); err != nil {
		t.Fatal(err)
	}
	return c, buf.Bytes()
}

func TestFlatRoundTripAllLayerKinds(t *testing.T) {
	c, raw := flatFixture(t)
	loaded, err := LoadFlat(raw)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FinalError != c.FinalError || loaded.BaselineError != c.BaselineError ||
		loaded.TotalEpochs != c.TotalEpochs {
		t.Fatal("quality metadata lost")
	}
	if len(loaded.Net.Layers) != len(c.Net.Layers) {
		t.Fatalf("layer count %d, want %d", len(loaded.Net.Layers), len(c.Net.Layers))
	}
	// The flat schema carries Index and RawInputs (the gob stream gained
	// them at the same time).
	for i, p := range loaded.Plans {
		if p.Index != c.Plans[i].Index {
			t.Fatalf("plan %d: Index %d, want %d", i, p.Index, c.Plans[i].Index)
		}
		if p.RawInputs != c.Plans[i].RawInputs {
			t.Fatalf("plan %d: RawInputs %d, want %d", i, p.RawInputs, c.Plans[i].RawInputs)
		}
	}
	// Pre-composed product tables come back at the geometry the lowering
	// expects, bit-identical to a local composition.
	for i, p := range loaded.Plans {
		if !p.IsCompute() {
			continue
		}
		if p.ProductFracBits != FlatProductFracBits {
			t.Fatalf("plan %d: ProductFracBits %d, want %d", i, p.ProductFracBits, FlatProductFracBits)
		}
		if len(p.Products) != len(p.WeightCodebooks) {
			t.Fatalf("plan %d: %d product tables for %d groups", i, len(p.Products), len(p.WeightCodebooks))
		}
		for g, tab := range p.Products {
			want := productTable(p.WeightCodebooks[g], p.InputCodebook, FlatProductFracBits)
			if len(tab) != len(want) {
				t.Fatalf("plan %d group %d: table len %d, want %d", i, g, len(tab), len(want))
			}
			for k := range tab {
				if tab[k] != want[k] {
					t.Fatalf("plan %d group %d entry %d: %d, want %d", i, g, k, tab[k], want[k])
				}
			}
		}
	}
	if len(loaded.Canaries) != len(c.Canaries) {
		t.Fatalf("canary count %d, want %d", len(loaded.Canaries), len(c.Canaries))
	}
	// Forward passes agree exactly.
	rng := rand.New(rand.NewSource(72))
	x := tensor.New(2, c.Net.InSize())
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	if !loaded.Net.Forward(x, false).Equal(c.Net.Forward(x, false), 0) {
		t.Fatal("flat-loaded network computes differently")
	}
}

func TestFlatGobTwinsBitIdenticalOnRegistry(t *testing.T) {
	// Every registry benchmark: the same model saved as RAPIDNN1 and
	// RAPIDNN2 must predict bit-identically after loading.
	for _, name := range dataset.Names() {
		ds, err := dataset.ByName(name, dataset.Small)
		if err != nil {
			t.Fatal(err)
		}
		net := model.FCNet(name, ds.InSize(), ds.NumClasses, 0.05, 2)
		c := &Composed{Net: net, Plans: SyntheticPlans(net, 8, 8, 16)}
		c.SynthesizeCanaries(2, 7)
		var gobBuf, flatBuf bytes.Buffer
		if err := c.Save(&gobBuf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.SaveFlat(&flatBuf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fromGob, err := Load(&gobBuf)
		if err != nil {
			t.Fatalf("%s: gob load: %v", name, err)
		}
		fromFlat, err := Load(bytes.NewReader(flatBuf.Bytes())) // sniffed
		if err != nil {
			t.Fatalf("%s: flat load: %v", name, err)
		}
		if fromFlat.Plans[0].Products == nil && fromFlat.Plans[0].IsCompute() {
			t.Fatalf("%s: flat loader dropped the product tables", name)
		}
		in := ds.InSize()
		n := 8
		x := tensor.FromSlice(ds.TestX.Data()[:n*in], n, in)
		pg := NewReinterpreted(fromGob.Net, fromGob.Plans).Predict(x)
		pf := NewReinterpreted(fromFlat.Net, fromFlat.Plans).Predict(x)
		for i := range pg {
			if pg[i] != pf[i] {
				t.Fatalf("%s: prediction %d differs between formats: gob %d vs flat %d", name, i, pg[i], pf[i])
			}
		}
	}
}

func TestOpenFlatMmap(t *testing.T) {
	c, raw := flatFixture(t)
	path := filepath.Join(t.TempDir(), "model.rapidnn")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mapped() {
		t.Fatal("OpenFlat model not marked as mapped")
	}
	// Predictions through the borrowed tables match the original.
	rng := rand.New(rand.NewSource(73))
	x := tensor.New(4, c.Net.InSize())
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	pa := NewReinterpreted(c.Net, c.Plans).Predict(x)
	pb := NewReinterpreted(m.Net, m.Plans).Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs through the mapping: %d vs %d", i, pa[i], pb[i])
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Mapped() {
		t.Fatal("model still marked mapped after Close")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
}

func TestLoadFileSniffsBothFormats(t *testing.T) {
	c, flatRaw := flatFixture(t)
	var gobBuf bytes.Buffer
	if err := c.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	flatPath := filepath.Join(dir, "flat.rapidnn")
	gobPath := filepath.Join(dir, "gob.rapidnn")
	if err := os.WriteFile(flatPath, flatRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gobPath, gobBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mf, err := LoadFile(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if !mf.Mapped() {
		t.Fatal("flat file must load through the mapping path")
	}
	mg, err := LoadFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Mapped() {
		t.Fatal("gob file must not be marked mapped")
	}
	if mg.Net.Topology() != mf.Net.Topology() {
		t.Fatalf("topologies differ: %s vs %s", mg.Net.Topology(), mf.Net.Topology())
	}
}

func TestConvertBetweenFormats(t *testing.T) {
	c, flatRaw := flatFixture(t)
	var gobBuf bytes.Buffer
	if err := c.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	// gob → flat.
	var toFlat bytes.Buffer
	if err := Convert(bytes.NewReader(gobBuf.Bytes()), &toFlat, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(toFlat.Bytes(), []byte(flatMagic)) {
		t.Fatal("gob→flat conversion did not produce a RAPIDNN2 file")
	}
	// flat → gob, then back through the plain loader.
	var toGob bytes.Buffer
	if err := Convert(bytes.NewReader(flatRaw), &toGob, false); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&toGob)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(74))
	x := tensor.New(2, c.Net.InSize())
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	pa := NewReinterpreted(c.Net, c.Plans).Predict(x)
	pb := NewReinterpreted(back.Net, back.Plans).Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs after flat→gob conversion", i)
		}
	}
}

// refixTableCRC recomputes the section-table checksum after a test mutated
// the table, so the corruption under test is reached instead of masked.
func refixTableCRC(raw []byte) {
	ne := binary.NativeEndian
	n := int(ne.Uint32(raw[16:20]))
	table := raw[flatHeaderSize : flatHeaderSize+n*flatEntrySize]
	ne.PutUint32(raw[20:24], crc32.Checksum(table, castagnoli))
}

func TestFlatRejectsCorruptHeader(t *testing.T) {
	_, raw := flatFixture(t)
	ne := binary.NativeEndian
	cases := []struct {
		name   string
		errHas string
		mutate func(b []byte)
	}{
		{"wrong magic", "magic", func(b []byte) { b[0] = 'X' }},
		{"future version", "version", func(b []byte) { ne.PutUint32(b[8:12], 99) }},
		{"foreign byte order", "byte order", func(b []byte) { ne.PutUint32(b[12:16], 0x04030201) }},
		{"wrong file size", "truncated", func(b []byte) { ne.PutUint64(b[24:32], uint64(len(b))+8) }},
		{"zero sections", "section count", func(b []byte) { ne.PutUint32(b[16:20], 0) }},
		{"implausible sections", "section count", func(b []byte) { ne.PutUint32(b[16:20], 1<<30) }},
		{"table checksum", "section table checksum", func(b []byte) { b[flatHeaderSize] ^= 0xff }},
	}
	for _, tc := range cases {
		mut := append([]byte(nil), raw...)
		tc.mutate(mut)
		c, err := LoadFlat(mut)
		if err == nil {
			t.Fatalf("%s: corrupted artifact loaded successfully", tc.name)
		}
		if c != nil {
			t.Fatalf("%s: non-nil model alongside error %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.errHas) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.errHas)
		}
	}
}

func TestFlatRejectsSectionCorruption(t *testing.T) {
	_, raw := flatFixture(t)
	ne := binary.NativeEndian
	n := int(ne.Uint32(raw[16:20]))
	entry := func(b []byte, i int) []byte {
		return b[flatHeaderSize+i*flatEntrySize : flatHeaderSize+(i+1)*flatEntrySize]
	}
	t.Run("payload bit flip", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		off := ne.Uint64(entry(mut, 1)[8:16]) // first blob section
		mut[off] ^= 0x01
		_, err := LoadFlat(mut)
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("payload corruption not caught by the section checksum: %v", err)
		}
	})
	t.Run("misaligned offset", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		e := entry(mut, 1)
		ne.PutUint64(e[8:16], ne.Uint64(e[8:16])+1)
		refixTableCRC(mut)
		_, err := LoadFlat(mut)
		if err == nil || !strings.Contains(err.Error(), "misaligned") {
			t.Fatalf("misaligned section accepted: %v", err)
		}
	})
	t.Run("section out of bounds", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		e := entry(mut, 1)
		ne.PutUint64(e[16:24], uint64(len(mut))*2)
		refixTableCRC(mut)
		_, err := LoadFlat(mut)
		if err == nil || !strings.Contains(err.Error(), "outside") {
			t.Fatalf("out-of-bounds section accepted: %v", err)
		}
	})
	t.Run("unknown section kind", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		ne.PutUint32(entry(mut, 1)[0:4], 42)
		refixTableCRC(mut)
		_, err := LoadFlat(mut)
		if err == nil || !strings.Contains(err.Error(), "unknown kind") {
			t.Fatalf("unknown section kind accepted: %v", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{0, 7, flatHeaderSize - 1, flatHeaderSize + 3,
			flatHeaderSize + n*flatEntrySize - 1, len(raw) / 2, len(raw) - 1} {
			c, err := LoadFlat(raw[:cut])
			if err == nil {
				t.Fatalf("truncation at %d/%d bytes loaded successfully", cut, len(raw))
			}
			if c != nil {
				t.Fatalf("truncation at %d: non-nil model with error %v", cut, err)
			}
		}
	})
}

// mustSaveFlat encodes a deliberately malformed Composed: the writer does
// not validate (the loader is the trust boundary), which is exactly what
// lets these regression tests produce corrupt artifacts.
func mustSaveFlat(t *testing.T, c *Composed) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.SaveFlat(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFlatRejectsInconsistentPlans(t *testing.T) {
	build := func() *Composed {
		rng := rand.New(rand.NewSource(75))
		net := nn.NewNetwork("bad").
			Add(nn.NewDense("fc", 6, 5, nn.Sigmoid{}, rng)).
			Add(nn.NewDense("out", 5, 2, nn.Identity{}, rng))
		return &Composed{Net: net, Plans: SyntheticPlans(net, 8, 8, 16)}
	}
	cases := []struct {
		name   string
		errHas string
		mutate func(c *Composed)
	}{
		// Satellite bugfix 1: ActZ shorter than ActY previously escaped Load
		// and panicked later in ActTable.Eval on a serving goroutine.
		{"short ActZ", "Z rows", func(c *Composed) {
			c.Plans[0].ActTable.Z = c.Plans[0].ActTable.Z[:3]
		}},
		{"empty Z", "empty Z", func(c *Composed) {
			c.Plans[0].ActTable.Z = nil
		}},
		{"unsorted ActY", "unsorted", func(c *Composed) {
			y := append([]float32(nil), c.Plans[0].ActTable.Y...)
			y[0], y[1] = y[1]+1, y[0]
			c.Plans[0].ActTable.Y = y
		}},
		// Satellite bugfix 3: negative geometry and out-of-range kinds were
		// accepted and trusted by all downstream indexing.
		{"negative neurons", "geometry", func(c *Composed) { c.Plans[0].Neurons = -4 }},
		{"negative edges", "geometry", func(c *Composed) { c.Plans[1].Edges = -1 }},
		{"kind out of range", "kind", func(c *Composed) { c.Plans[0].Kind = LayerKind(17) }},
		{"plan kind vs layer kind", "kind", func(c *Composed) { c.Plans[0].Kind = KindConv }},
		{"channel to missing codebook", "codebook", func(c *Composed) { c.Plans[0].ChannelCodebook = []int{3} }},
		{"unsorted weight codebook", "unsorted", func(c *Composed) {
			cb := append([]float32(nil), c.Plans[0].WeightCodebooks[0]...)
			cb[0] = cb[len(cb)-1] + 1
			c.Plans[0].WeightCodebooks = [][]float32{cb}
		}},
	}
	for _, tc := range cases {
		c := build()
		tc.mutate(c)
		raw := mustSaveFlat(t, c)
		m, err := LoadFlat(raw)
		if err == nil {
			t.Fatalf("%s: malformed plan loaded successfully", tc.name)
		}
		if m != nil {
			t.Fatalf("%s: non-nil model alongside error %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.errHas) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.errHas)
		}
	}
}

func TestFlatLoadAllocsIndependentOfProducts(t *testing.T) {
	// The zero-copy contract, pinned: loading a model whose product tables
	// are 36× larger must not allocate more — every table is a view into the
	// input bytes, so allocations scale with section count, not size.
	rng := rand.New(rand.NewSource(76))
	net := nn.NewNetwork("alloc").
		Add(nn.NewDense("fc", 12, 10, nn.Sigmoid{}, rng)).
		Add(nn.NewDense("out", 10, 4, nn.Identity{}, rng))
	encode := func(w, u int) []byte {
		c := &Composed{Net: net, Plans: SyntheticPlans(net, w, u, 16)}
		var buf bytes.Buffer
		if err := c.SaveFlat(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	small, big := encode(8, 8), encode(48, 48)
	measure := func(raw []byte) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := LoadFlat(raw); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := measure(small), measure(big)
	// Identical section counts ⇒ near-identical allocation counts; the slack
	// absorbs map growth inside gob's decoder.
	if b > a+8 {
		t.Fatalf("allocations grew with product-table size: %v (w=u=8) vs %v (w=u=48)", a, b)
	}
}
