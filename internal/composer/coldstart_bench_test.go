package composer

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
)

// coldStartModel is a serving-scale artifact: wide dense stack, 32-level
// codebooks, 64-row activation tables — big enough that the gob decode pass
// is dominated by table reconstruction while the flat reader's work stays
// proportional to the section count, not the table bytes.
func coldStartModel(tb testing.TB) *Composed {
	tb.Helper()
	rng := rand.New(rand.NewSource(97))
	net := nn.NewNetwork("coldstart").
		Add(nn.NewDense("fc1", 256, 512, nn.Sigmoid{}, rng)).
		Add(nn.NewDense("fc2", 512, 256, nn.Sigmoid{}, rng)).
		Add(nn.NewDense("out", 256, 10, nn.Identity{}, rng))
	c := &Composed{Net: net, Plans: SyntheticPlans(net, 32, 32, 64)}
	c.SynthesizeCanaries(8, 97)
	return c
}

// BenchmarkColdStart measures artifact-open latency for both formats over
// the same model: the gob stream decodes every table into fresh heap, the
// RAPIDNN2 file mmaps and hands out views. The flat path's win is the whole
// point of the format — load time and allocations independent of how much
// table data the artifact carries.
func BenchmarkColdStart(b *testing.B) {
	c := coldStartModel(b)

	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := Load(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			_ = m.Close()
		}
	})

	b.Run("flat", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "cold.rapidnn")
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.SaveFlat(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(st.Size())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := OpenFlat(path)
			if err != nil {
				b.Fatal(err)
			}
			_ = m.Close()
		}
	})
}
