package composer

import (
	"repro/internal/nn"
	"repro/internal/quant"
)

// SyntheticPlans builds layer plans directly from a network's *shape*,
// with evenly spaced placeholder codebooks instead of trained k-means
// centroids. Hardware studies (area, latency, energy, Figs. 13–16) depend
// only on layer geometry and codebook cardinalities, so this lets the
// benchmark harness evaluate paper-scale topologies (VGG-16-class neuron
// counts) without training them.
func SyntheticPlans(net *nn.Network, w, u, actRows int) []*LayerPlan {
	plans := make([]*LayerPlan, len(net.Layers))
	wcb := evenCodebook(w, 1)
	ucb := evenCodebook(u, 1)
	for i, l := range net.Layers {
		p := &LayerPlan{Index: i, Name: l.Name()}
		switch t := l.(type) {
		case *nn.Dense:
			p.Kind = KindDense
			p.Neurons = t.OutSize()
			p.Edges = t.InSize()
			p.WeightCodebooks = [][]float32{wcb}
			p.ChannelCodebook = []int{0}
			p.InputCodebook = ucb
			p.ActTable = syntheticTable(t.Act, actRows)
		case *nn.Conv2D:
			p.Kind = KindConv
			p.Neurons = t.OutSize()
			p.Edges = t.Geom.InC * t.Geom.KH * t.Geom.KW
			p.WeightCodebooks = make([][]float32, t.OutC)
			p.ChannelCodebook = make([]int, t.OutC)
			for ch := 0; ch < t.OutC; ch++ {
				p.WeightCodebooks[ch] = wcb
				p.ChannelCodebook[ch] = ch
			}
			p.InputCodebook = ucb
			p.ActTable = syntheticTable(t.Act, actRows)
		case *nn.Recurrent:
			p.Kind = KindRecurrent
			p.Neurons = t.H
			p.Edges = t.Steps * (t.In + t.H)
			p.WeightCodebooks = [][]float32{wcb}
			p.ChannelCodebook = []int{0}
			p.InputCodebook = ucb
			p.ActTable = syntheticTable(t.Act, actRows)
		case *nn.Pool2D:
			p.Kind = KindPool
			p.Neurons = t.OutSize()
			p.Edges = t.Geom.KH * t.Geom.KW
		case *nn.Dropout:
			p.Kind = KindDropout
		}
		plans[i] = p
	}
	for _, p := range plans {
		if p.IsCompute() {
			p.RawInputs = net.InSize()
			break
		}
	}
	return plans
}

func evenCodebook(n int, scale float32) []float32 {
	cb := make([]float32, n)
	for i := range cb {
		cb[i] = scale * (2*float32(i)/float32(max(n-1, 1)) - 1)
	}
	return cb
}

func syntheticTable(act nn.Activation, rows int) *quant.ActTable {
	switch act.(type) {
	case nn.ReLU, nn.Identity:
		return nil // comparator / exact logits
	}
	return quant.BuildActTable(act, rows, -8, 8, quant.NonLinear)
}
