package composer

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// trainedFixture returns a small trained FC network and its dataset, shared
// across tests (training dominates test runtime). Tests must not mutate the
// returned network — clone it instead.
var (
	fixtureOnce sync.Once
	fixtureNet  *nn.Network
	fixtureDS   *dataset.Dataset
)

func trainedFixture(t *testing.T) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureDS = dataset.MNIST(dataset.Small)
		fixtureNet = model.FCNet("MNIST", fixtureDS.InSize(), fixtureDS.NumClasses, 0.08, 1)
		model.Train(fixtureNet, fixtureDS, model.TrainConfig{Epochs: 4, BatchSize: 32, LR: 0.05, Momentum: 0.9})
	})
	return fixtureNet, fixtureDS
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxIterations = 2
	cfg.RetrainEpochs = 1
	cfg.SampleFrac = 0.2
	return cfg
}

func TestComposePreservesAccuracyAt64(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.DeltaE() > 0.05 {
		t.Fatalf("Δe = %v with w=u=64, want ≤ 0.05 (baseline %v, final %v)",
			c.DeltaE(), c.BaselineError, c.FinalError)
	}
	if len(c.History) == 0 {
		t.Fatal("no iteration history recorded")
	}
}

func TestComposeDoesNotMutateInput(t *testing.T) {
	net, ds := trainedFixture(t)
	before := net.Params()[0].Value.Clone()
	cfg := fastConfig()
	if _, err := Compose(net, ds, cfg); err != nil {
		t.Fatal(err)
	}
	if !net.Params()[0].Value.Equal(before, 0) {
		t.Fatal("Compose mutated the caller's network")
	}
}

func TestSmallerCodebooksLoseMoreAccuracy(t *testing.T) {
	net, ds := trainedFixture(t)
	errAt := func(w, u int) float64 {
		cfg := fastConfig()
		cfg.WeightClusters, cfg.InputClusters = w, u
		cfg.MaxIterations = 1 // isolate pure clustering loss
		c, err := Compose(net, ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.FinalError
	}
	big := errAt(64, 64)
	tiny := errAt(2, 2)
	if tiny < big-0.01 {
		t.Fatalf("w=u=2 error %v unexpectedly better than w=u=64 error %v", tiny, big)
	}
}

func TestRetrainingRecoversAccuracy(t *testing.T) {
	// With an aggressive codebook, iteration 0 (pure clustering) should be
	// no better than the best error after retraining rounds (Fig. 6d).
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.WeightClusters, cfg.InputClusters = 4, 8
	cfg.MaxIterations = 3
	cfg.RetrainEpochs = 2
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := c.History[0].ClusteredError
	if c.FinalError > first+1e-9 {
		t.Fatalf("final error %v worse than iteration-0 error %v", c.FinalError, first)
	}
}

func TestComposeValidation(t *testing.T) {
	net, ds := trainedFixture(t)
	bad := []func(*Config){
		func(c *Config) { c.WeightClusters = 0 },
		func(c *Config) { c.ActRows = 1 },
		func(c *Config) { c.MaxIterations = 0 },
		func(c *Config) { c.SampleFrac = 0 },
		func(c *Config) { c.ShareFraction = 0.95 },
	}
	for i, mutate := range bad {
		cfg := fastConfig()
		mutate(&cfg)
		if _, err := Compose(net, ds, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBuildPlansShapes(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	plans, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(net.Layers) {
		t.Fatalf("%d plans for %d layers", len(plans), len(net.Layers))
	}
	for i, p := range plans {
		switch net.Layers[i].(type) {
		case *nn.Dense:
			if p.Kind != KindDense || len(p.WeightCodebooks) != 1 {
				t.Fatalf("plan %d: kind %v, %d codebooks", i, p.Kind, len(p.WeightCodebooks))
			}
			if p.W() > cfg.WeightClusters || p.U() > cfg.InputClusters {
				t.Fatalf("plan %d: w=%d u=%d exceed config", i, p.W(), p.U())
			}
			if p.Neurons != net.Layers[i].OutSize() || p.Edges != net.Layers[i].InSize() {
				t.Fatalf("plan %d: neurons/edges wrong", i)
			}
		case *nn.Dropout:
			if p.Kind != KindDropout || p.IsCompute() {
				t.Fatalf("plan %d should be dropout", i)
			}
		}
	}
}

// The per-layer clustering fans out across goroutines; every layer seeds
// its own k-means deterministically, so repeated builds must produce
// bit-identical codebooks regardless of scheduling.
func TestBuildPlansParallelDeterministic(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	a, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d vs %d plans", len(a), len(b))
	}
	for i := range a {
		if len(a[i].WeightCodebooks) != len(b[i].WeightCodebooks) {
			t.Fatalf("plan %d: codebook group counts differ", i)
		}
		for g := range a[i].WeightCodebooks {
			wa, wb := a[i].WeightCodebooks[g], b[i].WeightCodebooks[g]
			if len(wa) != len(wb) {
				t.Fatalf("plan %d group %d: codebook sizes differ", i, g)
			}
			for j := range wa {
				if wa[j] != wb[j] {
					t.Fatalf("plan %d group %d: weight codebooks differ at %d: %v vs %v", i, g, j, wa[j], wb[j])
				}
			}
		}
		for j := range a[i].InputCodebook {
			if a[i].InputCodebook[j] != b[i].InputCodebook[j] {
				t.Fatalf("plan %d: input codebooks differ at %d", i, j)
			}
		}
	}
}

func TestReLUComparatorSkipsTable(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	plans, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// fc1 uses ReLU → comparator, output layer identity → nil.
	for _, p := range plans {
		if p.IsCompute() && p.ActTable != nil {
			t.Fatalf("layer %s has a table despite ReLU comparator config", p.Name)
		}
	}
	cfg.ReLUAsComparator = false
	plans, err = BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].ActTable == nil {
		t.Fatal("with comparator disabled, ReLU layers must get a table")
	}
	if plans[0].ActTable.Rows() != cfg.ActRows {
		t.Fatalf("table rows %d, want %d", plans[0].ActTable.Rows(), cfg.ActRows)
	}
}

func TestQuantizeWeightsInPlaceSnapsToCodebook(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.WeightClusters = 8
	plans, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	work := nn.CloneNetwork(net)
	QuantizeWeightsInPlace(work, plans)
	dense := work.Layers[0].(*nn.Dense)
	cb := plans[0].WeightCodebooks[0]
	inBook := func(v float32) bool {
		for _, c := range cb {
			if c == v {
				return true
			}
		}
		return false
	}
	for _, v := range dense.W.Value.Data() {
		if !inBook(v) {
			t.Fatalf("weight %v not in codebook %v", v, cb)
		}
	}
}

func TestReinterpretedUsesOnlyCodebookInputs(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.InputClusters = 4
	plans, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	re := NewReinterpreted(net, plans)
	out := re.Forward(dsBatch(ds, 8))
	if out.Dim(0) != 8 || out.Dim(1) != ds.NumClasses {
		t.Fatalf("output shape %v", out.Shape())
	}
}

func TestComposeDeterministic(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.MaxIterations = 1
	a, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalError != b.FinalError {
		t.Fatalf("nondeterministic compose: %v vs %v", a.FinalError, b.FinalError)
	}
}

func TestHistogramCollapsesAfterClustering(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.WeightClusters = 8
	plans, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := WeightHistogram(net, 0, 100)
	work := nn.CloneNetwork(net)
	QuantizeWeightsInPlace(work, plans)
	after := WeightHistogram(work, 0, 100)
	if after.NonZeroBins() > 8 {
		t.Fatalf("clustered histogram has %d non-zero bins, want ≤ 8", after.NonZeroBins())
	}
	if before.NonZeroBins() <= after.NonZeroBins() {
		t.Fatalf("clustering did not collapse the distribution: %d → %d",
			before.NonZeroBins(), after.NonZeroBins())
	}
}

func TestMemoryModelScalesWithCodebooks(t *testing.T) {
	net, ds := trainedFixture(t)
	mm := DefaultMemoryModel()
	bytesFor := func(w, u int) int64 {
		cfg := fastConfig()
		cfg.WeightClusters, cfg.InputClusters = w, u
		plans, err := BuildPlans(net, ds, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		return mm.TotalBytes(plans)
	}
	small, big := bytesFor(4, 4), bytesFor(64, 64)
	if big <= small {
		t.Fatalf("memory at w=u=64 (%d) not larger than w=u=4 (%d)", big, small)
	}
	// Crossbar scales ~quadratically in codebook size: 64²/4² = 256.
	if ratio := float64(big) / float64(small); ratio < 20 {
		t.Fatalf("memory ratio %v, want ≫ 1", ratio)
	}
}

// The paper's ≈5 KB/neuron figure at w=u=64 (§1).
func TestNeuronBytesNearPaperFigure(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	plans, err := BuildPlans(net, ds, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	mm := DefaultMemoryModel()
	nb := mm.NeuronBytes(plans[0])
	if nb < 4000 || nb > 8000 {
		t.Fatalf("per-neuron bytes %d, want ≈5 KB", nb)
	}
}

func dsBatch(ds *dataset.Dataset, n int) *tensor.Tensor {
	in := ds.InSize()
	return tensor.FromSlice(ds.TestX.Data()[:n*in], n, in)
}
