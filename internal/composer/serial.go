package composer

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// This file serializes composed models: the quantized network together with
// its layer plans — everything the accelerator needs at configuration time
// (§3.3) — in a self-contained gob stream. A deployment can therefore run
// the composer once offline and ship the artifact, exactly as the paper
// amortizes the composer across "all future executions" (§5.2).

const serialMagic = "RAPIDNN1"

type layerSnapshot struct {
	Kind string // dense | conv | pool | dropout | recurrent
	Name string
	Act  string
	Skip bool

	// dense
	In, Out int
	// conv / pool
	Geom     tensor.ConvGeom
	OutC     int
	PoolKind int
	// recurrent
	Hidden, Steps int
	// dropout
	Size int
	Rate float64

	W, B, Wx, Wh []float32
}

type planSnapshot struct {
	Kind            int
	Name            string
	WeightCodebooks [][]float32
	ChannelCodebook []int
	InputCodebook   []float32
	ActName         string
	ActY, ActZ      []float32
	Neurons, Edges  int
	// Index and RawInputs were added after the first artifacts shipped; gob
	// leaves them zero when decoding an older stream, which matches the old
	// restore behavior.
	Index     int
	RawInputs int
}

type modelSnapshot struct {
	Magic         string
	NetName       string
	Layers        []layerSnapshot
	Plans         []planSnapshot
	BaselineError float64
	FinalError    float64
	TotalEpochs   int
	// Canaries may be absent in artifacts written before the reliability
	// subsystem; gob leaves the field empty and loaders synthesize instead.
	Canaries []Canary
}

// Save writes the composed model (retrained network + plans + quality
// metadata) to w.
func (c *Composed) Save(w io.Writer) error {
	snap := modelSnapshot{
		Magic:         serialMagic,
		NetName:       c.Net.Name,
		BaselineError: c.BaselineError,
		FinalError:    c.FinalError,
		TotalEpochs:   c.TotalEpochs,
		Canaries:      c.Canaries,
	}
	for _, l := range c.Net.Layers {
		ls, err := snapshotLayer(l)
		if err != nil {
			return err
		}
		snap.Layers = append(snap.Layers, ls)
	}
	for _, p := range c.Plans {
		snap.Plans = append(snap.Plans, snapshotPlan(p))
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a composed model written by Save or SaveFlat, sniffing the
// format from the first bytes: a RAPIDNN2 magic selects the flat reader
// (buffering the stream in memory — use LoadFile/OpenFlat to map a file
// zero-copy instead), anything else is treated as the RAPIDNN1 gob stream.
// It never panics on malformed input: a truncated or corrupted stream, a
// file of some other format, or an internally inconsistent snapshot all come
// back as descriptive wrapped errors.
func Load(r io.Reader) (*Composed, error) {
	var head [8]byte
	n, err := io.ReadFull(r, head[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("composer: %w", err)
	}
	if n == len(head) && string(head[:]) == flatMagic {
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("composer: %w", err)
		}
		return LoadFlat(append(head[:0:0], append(head[:], rest...)...))
	}
	return loadGob(io.MultiReader(bytes.NewReader(head[:n]), r))
}

func loadGob(r io.Reader) (c *Composed, err error) {
	// Layer constructors size their tensors from decoded fields; a corrupted
	// snapshot that slips past the explicit checks below must still surface
	// as an error, not a panic.
	defer func() {
		if p := recover(); p != nil {
			c, err = nil, fmt.Errorf("composer: corrupted model snapshot: %v", p)
		}
	}()
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("composer: decode model (truncated or corrupted gob stream?): %w", err)
	}
	if snap.Magic != serialMagic {
		return nil, fmt.Errorf("composer: not a %s composed-model file (magic %q, want %q)",
			serialMagic, snap.Magic, serialMagic)
	}
	net := nn.NewNetwork(snap.NetName)
	for i, ls := range snap.Layers {
		l, err := restoreLayer(ls)
		if err != nil {
			return nil, fmt.Errorf("composer: layer %d (%s): %w", i, ls.Name, err)
		}
		net.Add(l)
	}
	c = &Composed{
		Net:           net,
		BaselineError: snap.BaselineError,
		FinalError:    snap.FinalError,
		TotalEpochs:   snap.TotalEpochs,
	}
	for _, ps := range snap.Plans {
		c.Plans = append(c.Plans, restorePlan(ps))
	}
	c.Canaries = snap.Canaries
	if err := validateComposed(c); err != nil {
		return nil, err
	}
	return c, nil
}

func snapshotLayer(l nn.Layer) (layerSnapshot, error) {
	switch t := l.(type) {
	case *nn.Dense:
		return layerSnapshot{
			Kind: "dense", Name: t.Name(), Act: t.Act.Name(), Skip: t.Skip,
			In: t.InSize(), Out: t.OutSize(),
			W: t.W.Value.Data(), B: t.B.Value.Data(),
		}, nil
	case *nn.Conv2D:
		return layerSnapshot{
			Kind: "conv", Name: t.Name(), Act: t.Act.Name(), Skip: t.Skip,
			Geom: t.Geom, OutC: t.OutC,
			W: t.W.Value.Data(), B: t.B.Value.Data(),
		}, nil
	case *nn.Pool2D:
		return layerSnapshot{Kind: "pool", Name: t.Name(), Geom: t.Geom, PoolKind: int(t.Kind)}, nil
	case *nn.Dropout:
		return layerSnapshot{Kind: "dropout", Name: t.Name(), Size: t.InSize(), Rate: t.Rate}, nil
	case *nn.Recurrent:
		return layerSnapshot{
			Kind: "recurrent", Name: t.Name(), Act: t.Act.Name(),
			In: t.In, Hidden: t.H, Steps: t.Steps,
			Wx: t.Wx.Value.Data(), Wh: t.Wh.Value.Data(), B: t.B.Value.Data(),
		}, nil
	}
	return layerSnapshot{}, fmt.Errorf("composer: cannot serialize layer %T", l)
}

// fillParam copies a decoded weight slice into a freshly constructed
// parameter tensor, rejecting snapshots whose slice length disagrees with
// the layer geometry — the signature of a corrupted stream that still
// decoded as valid gob.
func fillParam(dst []float32, src []float32, param string) error {
	if len(src) != len(dst) {
		return fmt.Errorf("%s tensor has %d values, layer geometry wants %d", param, len(src), len(dst))
	}
	copy(dst, src)
	return nil
}

func restoreLayer(ls layerSnapshot) (nn.Layer, error) {
	act := nn.ActivationByName(ls.Act)
	if act == nil && (ls.Kind == "dense" || ls.Kind == "conv" || ls.Kind == "recurrent") {
		return nil, fmt.Errorf("unknown activation %q", ls.Act)
	}
	switch ls.Kind {
	case "dense":
		if ls.In <= 0 || ls.Out <= 0 {
			return nil, fmt.Errorf("dense layer has non-positive shape %dx%d", ls.In, ls.Out)
		}
		d := nn.NewDense(ls.Name, ls.In, ls.Out, act, nil)
		d.Skip = ls.Skip
		if err := fillParam(d.W.Value.Data(), ls.W, "weight"); err != nil {
			return nil, err
		}
		if err := fillParam(d.B.Value.Data(), ls.B, "bias"); err != nil {
			return nil, err
		}
		return d, nil
	case "conv":
		if ls.OutC <= 0 || ls.Geom.InC <= 0 || ls.Geom.KH <= 0 || ls.Geom.KW <= 0 || ls.Geom.Stride <= 0 {
			return nil, fmt.Errorf("conv layer has invalid geometry %+v outC=%d", ls.Geom, ls.OutC)
		}
		c := nn.NewConv2D(ls.Name, ls.Geom, ls.OutC, act, nil)
		c.Skip = ls.Skip
		if err := fillParam(c.W.Value.Data(), ls.W, "weight"); err != nil {
			return nil, err
		}
		if err := fillParam(c.B.Value.Data(), ls.B, "bias"); err != nil {
			return nil, err
		}
		return c, nil
	case "pool":
		if ls.Geom.InC <= 0 || ls.Geom.KH <= 0 || ls.Geom.KW <= 0 || ls.Geom.Stride <= 0 {
			return nil, fmt.Errorf("pool layer has invalid geometry %+v", ls.Geom)
		}
		return nn.NewPool2D(ls.Name, nn.PoolKind(ls.PoolKind), ls.Geom), nil
	case "dropout":
		if ls.Size <= 0 {
			return nil, fmt.Errorf("dropout layer has non-positive size %d", ls.Size)
		}
		// Weighted layers above take a nil rng: their parameters are
		// overwritten from the snapshot, and skipping the random init is most
		// of a cold start's CPU on large models. Dropout draws masks at
		// training time, so it alone gets a real source.
		return nn.NewDropout(ls.Name, ls.Size, ls.Rate, rand.New(rand.NewSource(1))), nil
	case "recurrent":
		if ls.In <= 0 || ls.Hidden <= 0 || ls.Steps <= 0 {
			return nil, fmt.Errorf("recurrent layer has non-positive shape in=%d h=%d steps=%d", ls.In, ls.Hidden, ls.Steps)
		}
		r := nn.NewRecurrent(ls.Name, ls.In, ls.Hidden, ls.Steps, act, nil)
		if err := fillParam(r.Wx.Value.Data(), ls.Wx, "input-weight"); err != nil {
			return nil, err
		}
		if err := fillParam(r.Wh.Value.Data(), ls.Wh, "hidden-weight"); err != nil {
			return nil, err
		}
		if err := fillParam(r.B.Value.Data(), ls.B, "bias"); err != nil {
			return nil, err
		}
		return r, nil
	}
	return nil, fmt.Errorf("unknown layer kind %q", ls.Kind)
}

func snapshotPlan(p *LayerPlan) planSnapshot {
	ps := planSnapshot{
		Kind: int(p.Kind), Name: p.Name,
		WeightCodebooks: p.WeightCodebooks,
		ChannelCodebook: p.ChannelCodebook,
		InputCodebook:   p.InputCodebook,
		Neurons:         p.Neurons, Edges: p.Edges,
		Index:     p.Index,
		RawInputs: p.RawInputs,
	}
	if p.ActTable != nil {
		ps.ActName = p.ActTable.Name
		ps.ActY = p.ActTable.Y
		ps.ActZ = p.ActTable.Z
	}
	return ps
}

func restorePlan(ps planSnapshot) *LayerPlan {
	p := &LayerPlan{
		Kind: LayerKind(ps.Kind), Name: ps.Name,
		WeightCodebooks: ps.WeightCodebooks,
		ChannelCodebook: ps.ChannelCodebook,
		InputCodebook:   ps.InputCodebook,
		Neurons:         ps.Neurons, Edges: ps.Edges,
		Index:     ps.Index,
		RawInputs: ps.RawInputs,
	}
	// A present-but-mismatched table (ActZ shorter than ActY, unsorted Y)
	// is rejected downstream by validatePlan, which both readers run.
	if len(ps.ActY) > 0 || len(ps.ActZ) > 0 {
		p.ActTable = &quant.ActTable{Name: ps.ActName, Y: ps.ActY, Z: ps.ActZ}
	}
	return p
}
