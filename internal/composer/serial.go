package composer

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// This file serializes composed models: the quantized network together with
// its layer plans — everything the accelerator needs at configuration time
// (§3.3) — in a self-contained gob stream. A deployment can therefore run
// the composer once offline and ship the artifact, exactly as the paper
// amortizes the composer across "all future executions" (§5.2).

const serialMagic = "RAPIDNN1"

type layerSnapshot struct {
	Kind string // dense | conv | pool | dropout | recurrent
	Name string
	Act  string
	Skip bool

	// dense
	In, Out int
	// conv / pool
	Geom     tensor.ConvGeom
	OutC     int
	PoolKind int
	// recurrent
	Hidden, Steps int
	// dropout
	Size int
	Rate float64

	W, B, Wx, Wh []float32
}

type planSnapshot struct {
	Kind            int
	Name            string
	WeightCodebooks [][]float32
	ChannelCodebook []int
	InputCodebook   []float32
	ActName         string
	ActY, ActZ      []float32
	Neurons, Edges  int
}

type modelSnapshot struct {
	Magic         string
	NetName       string
	Layers        []layerSnapshot
	Plans         []planSnapshot
	BaselineError float64
	FinalError    float64
	TotalEpochs   int
}

// Save writes the composed model (retrained network + plans + quality
// metadata) to w.
func (c *Composed) Save(w io.Writer) error {
	snap := modelSnapshot{
		Magic:         serialMagic,
		NetName:       c.Net.Name,
		BaselineError: c.BaselineError,
		FinalError:    c.FinalError,
		TotalEpochs:   c.TotalEpochs,
	}
	for _, l := range c.Net.Layers {
		ls, err := snapshotLayer(l)
		if err != nil {
			return err
		}
		snap.Layers = append(snap.Layers, ls)
	}
	for _, p := range c.Plans {
		snap.Plans = append(snap.Plans, snapshotPlan(p))
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a composed model written by Save.
func Load(r io.Reader) (*Composed, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("composer: decode: %w", err)
	}
	if snap.Magic != serialMagic {
		return nil, fmt.Errorf("composer: bad magic %q", snap.Magic)
	}
	net := nn.NewNetwork(snap.NetName)
	for _, ls := range snap.Layers {
		l, err := restoreLayer(ls)
		if err != nil {
			return nil, err
		}
		net.Add(l)
	}
	c := &Composed{
		Net:           net,
		BaselineError: snap.BaselineError,
		FinalError:    snap.FinalError,
		TotalEpochs:   snap.TotalEpochs,
	}
	for _, ps := range snap.Plans {
		c.Plans = append(c.Plans, restorePlan(ps))
	}
	if len(c.Plans) != len(net.Layers) {
		return nil, fmt.Errorf("composer: %d plans for %d layers", len(c.Plans), len(net.Layers))
	}
	return c, nil
}

func snapshotLayer(l nn.Layer) (layerSnapshot, error) {
	switch t := l.(type) {
	case *nn.Dense:
		return layerSnapshot{
			Kind: "dense", Name: t.Name(), Act: t.Act.Name(), Skip: t.Skip,
			In: t.InSize(), Out: t.OutSize(),
			W: t.W.Value.Data(), B: t.B.Value.Data(),
		}, nil
	case *nn.Conv2D:
		return layerSnapshot{
			Kind: "conv", Name: t.Name(), Act: t.Act.Name(), Skip: t.Skip,
			Geom: t.Geom, OutC: t.OutC,
			W: t.W.Value.Data(), B: t.B.Value.Data(),
		}, nil
	case *nn.Pool2D:
		return layerSnapshot{Kind: "pool", Name: t.Name(), Geom: t.Geom, PoolKind: int(t.Kind)}, nil
	case *nn.Dropout:
		return layerSnapshot{Kind: "dropout", Name: t.Name(), Size: t.InSize(), Rate: t.Rate}, nil
	case *nn.Recurrent:
		return layerSnapshot{
			Kind: "recurrent", Name: t.Name(), Act: t.Act.Name(),
			In: t.In, Hidden: t.H, Steps: t.Steps,
			Wx: t.Wx.Value.Data(), Wh: t.Wh.Value.Data(), B: t.B.Value.Data(),
		}, nil
	}
	return layerSnapshot{}, fmt.Errorf("composer: cannot serialize layer %T", l)
}

func restoreLayer(ls layerSnapshot) (nn.Layer, error) {
	// The RNG only seeds initial weights, which are overwritten below.
	rng := rand.New(rand.NewSource(1))
	act := nn.ActivationByName(ls.Act)
	if act == nil && (ls.Kind == "dense" || ls.Kind == "conv" || ls.Kind == "recurrent") {
		return nil, fmt.Errorf("composer: unknown activation %q", ls.Act)
	}
	switch ls.Kind {
	case "dense":
		d := nn.NewDense(ls.Name, ls.In, ls.Out, act, rng)
		d.Skip = ls.Skip
		copy(d.W.Value.Data(), ls.W)
		copy(d.B.Value.Data(), ls.B)
		return d, nil
	case "conv":
		c := nn.NewConv2D(ls.Name, ls.Geom, ls.OutC, act, rng)
		c.Skip = ls.Skip
		copy(c.W.Value.Data(), ls.W)
		copy(c.B.Value.Data(), ls.B)
		return c, nil
	case "pool":
		return nn.NewPool2D(ls.Name, nn.PoolKind(ls.PoolKind), ls.Geom), nil
	case "dropout":
		return nn.NewDropout(ls.Name, ls.Size, ls.Rate, rng), nil
	case "recurrent":
		r := nn.NewRecurrent(ls.Name, ls.In, ls.Hidden, ls.Steps, act, rng)
		copy(r.Wx.Value.Data(), ls.Wx)
		copy(r.Wh.Value.Data(), ls.Wh)
		copy(r.B.Value.Data(), ls.B)
		return r, nil
	}
	return nil, fmt.Errorf("composer: unknown layer kind %q", ls.Kind)
}

func snapshotPlan(p *LayerPlan) planSnapshot {
	ps := planSnapshot{
		Kind: int(p.Kind), Name: p.Name,
		WeightCodebooks: p.WeightCodebooks,
		ChannelCodebook: p.ChannelCodebook,
		InputCodebook:   p.InputCodebook,
		Neurons:         p.Neurons, Edges: p.Edges,
	}
	if p.ActTable != nil {
		ps.ActName = p.ActTable.Name
		ps.ActY = p.ActTable.Y
		ps.ActZ = p.ActTable.Z
	}
	return ps
}

func restorePlan(ps planSnapshot) *LayerPlan {
	p := &LayerPlan{
		Kind: LayerKind(ps.Kind), Name: ps.Name,
		WeightCodebooks: ps.WeightCodebooks,
		ChannelCodebook: ps.ChannelCodebook,
		InputCodebook:   ps.InputCodebook,
		Neurons:         ps.Neurons, Edges: ps.Edges,
	}
	if len(ps.ActY) > 0 {
		p.ActTable = &quant.ActTable{Name: ps.ActName, Y: ps.ActY, Z: ps.ActZ}
	}
	return p
}
