package composer

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// LayerKind classifies a layer for planning and accounting.
type LayerKind int

const (
	KindDense LayerKind = iota
	KindConv
	KindPool
	KindDropout
	KindRecurrent
)

func (k LayerKind) String() string {
	switch k {
	case KindDense:
		return "dense"
	case KindConv:
		return "conv"
	case KindPool:
		return "pool"
	case KindRecurrent:
		return "recurrent"
	}
	return "dropout"
}

// LayerPlan is the RNA configuration for one network layer (§3.3): the
// weight codebooks (one per conv output-channel group, a single one for a
// fully-connected layer), the input codebook its operands are encoded with,
// and the activation lookup table. Pooling and dropout layers carry a plan
// too so the accelerator can account for their neurons, but have no
// codebooks.
type LayerPlan struct {
	Index int
	Name  string
	Kind  LayerKind

	// WeightCodebooks holds sorted codebooks; ChannelCodebook maps each conv
	// output channel to its codebook index (always 0 for dense layers).
	WeightCodebooks [][]float32
	ChannelCodebook []int
	// InputCodebook holds the sorted representatives of this layer's inputs.
	InputCodebook []float32
	// ActTable approximates the layer activation; nil when the activation is
	// computed exactly (ReLU comparator, identity output layer).
	ActTable *quant.ActTable

	// Neurons is the number of logical neurons (RNA blocks before sharing)
	// and Edges the incoming edges per neuron.
	Neurons int
	Edges   int

	// WeightTrees/InputTree hold the hierarchical codebooks when the
	// composer ran with UseTreeCodebooks; they enable ReconfigurePlans to
	// re-target precision without re-clustering (§3.1's dynamic tuning).
	WeightTrees []*cluster.Tree
	InputTree   *cluster.Tree

	// Products holds the pre-composed fixed-point product tables of a
	// RAPIDNN2 artifact, one stride-indexed [len(wcb)·len(ucb)] table per
	// weight-codebook group, at ProductFracBits fractional bits. Populated
	// only by the flat loader, where each table is a read-only view into the
	// mapped file — the hardware lowering borrows it instead of recomputing
	// (see rna.NewFuncRNAShared); everything else leaves it nil. Borrowed
	// tables are owned by the artifact mapping: they stay valid until the
	// loading Composed's Close.
	Products        [][]int64
	ProductFracBits uint

	// RawInputs is the network's raw feature count, set on the first compute
	// layer's plan; the accelerator charges the data-block read and virtual
	// encoding layer (§2.2) from it.
	RawInputs int
}

// W returns the weight-codebook cardinality (0 for non-compute layers).
func (p *LayerPlan) W() int {
	if len(p.WeightCodebooks) == 0 {
		return 0
	}
	w := 0
	for _, cb := range p.WeightCodebooks {
		if len(cb) > w {
			w = len(cb)
		}
	}
	return w
}

// U returns the input-codebook cardinality.
func (p *LayerPlan) U() int { return len(p.InputCodebook) }

// IsCompute reports whether the layer performs weighted accumulation.
func (p *LayerPlan) IsCompute() bool {
	return p.Kind == KindDense || p.Kind == KindConv || p.Kind == KindRecurrent
}

// BuildPlans runs parameter clustering (§3.1) for every layer of net:
// weights are clustered per layer (per output channel for convolutions,
// grouped when ShareFraction > 0), inputs are clustered from a sampled
// feed-forward over the training split, and activation tables are built over
// the observed pre-activation range clipped to the function's saturation
// domain. iter perturbs sampling seeds so successive composer iterations do
// not reuse identical samples.
//
// Layers cluster concurrently: the statistics pass is a serial feed-forward,
// but each layer's k-means runs over its own population with its own
// deterministic seed, so fanning the layers out across cores yields
// bit-identical plans in any schedule.
func BuildPlans(net *nn.Network, ds *dataset.Dataset, cfg Config, iter int) ([]*LayerPlan, error) {
	statsSp := cfg.Trace.Start("composer", "statistics")
	inputs, pres, err := sampleStatistics(net, ds, cfg, iter)
	statsSp.End()
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed + int64(iter)*7919
	plans := make([]*LayerPlan, len(net.Layers))
	errs := make([]error, len(net.Layers))
	var wg sync.WaitGroup
	for i, l := range net.Layers {
		wg.Add(1)
		go func(i int, l nn.Layer) {
			defer wg.Done()
			// Span per layer clustering; the tracer is concurrency-safe, so
			// the fan-out needs no coordination.
			sp := cfg.Trace.Start("composer", "cluster:"+l.Name())
			plans[i], errs[i] = buildLayerPlan(l, i, inputs[i], pres[i], cfg, seed)
			sp.End()
		}(i, l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, p := range plans {
		if p.IsCompute() {
			p.RawInputs = net.InSize()
			break
		}
	}
	return plans, nil
}

// buildLayerPlan clusters one layer into its RNA configuration. It reads
// only the (frozen) layer weights and the pre-collected statistic samples,
// so any number of layers can build concurrently.
func buildLayerPlan(l nn.Layer, i int, inputs, pres []float32, cfg Config, seed int64) (*LayerPlan, error) {
	p := &LayerPlan{Index: i, Name: l.Name()}
	switch t := l.(type) {
	case *nn.Dense:
		p.Kind = KindDense
		p.Neurons = t.OutSize()
		p.Edges = t.InSize()
		cb, tree := buildCodebookTree(t.W.Value.Data(), cfg.WeightClusters, cfg, seed+int64(i))
		p.WeightCodebooks = [][]float32{cb}
		p.ChannelCodebook = []int{0}
		if tree != nil {
			p.WeightTrees = []*cluster.Tree{tree}
		}
	case *nn.Conv2D:
		p.Kind = KindConv
		p.Neurons = t.OutSize()
		p.Edges = t.Geom.InC * t.Geom.KH * t.Geom.KW
		p.WeightCodebooks, p.ChannelCodebook, p.WeightTrees = convCodebooks(t, cfg, seed+int64(i))
	case *nn.Recurrent:
		p.Kind = KindRecurrent
		p.Neurons = t.H
		// One RNA evaluates the neuron across all unrolled steps; every
		// step contributes its frame plus the fed-back hidden state.
		p.Edges = t.Steps * (t.In + t.H)
		// Input-to-hidden and hidden-to-hidden weights share one codebook
		// (they occupy the same crossbar).
		weights := append(append([]float32(nil), t.Wx.Value.Data()...), t.Wh.Value.Data()...)
		cb, tree := buildCodebookTree(weights, cfg.WeightClusters, cfg, seed+int64(i))
		p.WeightCodebooks = [][]float32{cb}
		p.ChannelCodebook = []int{0}
		if tree != nil {
			p.WeightTrees = []*cluster.Tree{tree}
		}
	case *nn.Pool2D:
		p.Kind = KindPool
		p.Neurons = t.OutSize()
		p.Edges = t.Geom.KH * t.Geom.KW
		return p, nil
	case *nn.Dropout:
		p.Kind = KindDropout
		return p, nil
	default:
		return nil, fmt.Errorf("composer: unsupported layer type %T", l)
	}
	// Input codebook from the sampled operand population.
	if len(inputs) == 0 {
		return nil, fmt.Errorf("composer: no input samples for layer %s", l.Name())
	}
	p.InputCodebook, p.InputTree = buildCodebookTree(inputs, cfg.InputClusters, cfg, seed+31*int64(i))
	// Activation table over the observed pre-activation range.
	p.ActTable = buildActTable(l, pres, cfg)
	return p, nil
}

// convCodebooks clusters each output channel's filter separately (§3.1:
// "the weights corresponding to different output channels are clustered
// separately... resulting in M different codebooks"). With sharing, adjacent
// channels are grouped and share one codebook (§5.6).
func convCodebooks(t *nn.Conv2D, cfg Config, seed int64) ([][]float32, []int, []*cluster.Tree) {
	m := t.OutC
	k := t.W.Value.Dim(1)
	groups := m - int(math.Round(float64(m)*cfg.ShareFraction))
	if groups < 1 {
		groups = 1
	}
	books := make([][]float32, groups)
	channelToBook := make([]int, m)
	var trees []*cluster.Tree
	if cfg.UseTreeCodebooks {
		trees = make([]*cluster.Tree, groups)
	}
	for g := 0; g < groups; g++ {
		lo := g * m / groups
		hi := (g + 1) * m / groups
		var samples []float32
		for ch := lo; ch < hi; ch++ {
			channelToBook[ch] = g
			samples = append(samples, t.W.Value.Data()[ch*k:(ch+1)*k]...)
		}
		cb, tree := buildCodebookTree(samples, cfg.WeightClusters, cfg, seed+int64(g))
		books[g] = cb
		if trees != nil {
			trees[g] = tree
		}
	}
	return books, channelToBook, trees
}

func buildActTable(l nn.Layer, pre []float32, cfg Config) *quant.ActTable {
	var act nn.Activation
	switch t := l.(type) {
	case *nn.Dense:
		act = t.Act
	case *nn.Conv2D:
		act = t.Act
	case *nn.Recurrent:
		act = t.Act
	default:
		return nil
	}
	switch act.(type) {
	case nn.Identity:
		return nil // output layer logits stay exact
	case nn.ReLU:
		if cfg.ReLUAsComparator {
			return nil // hardware comparator, exact
		}
	}
	lo, hi := observedRange(pre)
	slo, shi := quant.SaturationDomain(act, 1e-3, 64)
	if slo > lo {
		lo = slo
	}
	if shi < hi {
		hi = shi
	}
	if !(lo < hi) {
		lo, hi = -1, 1
	}
	return quant.BuildActTable(act, cfg.ActRows, lo, hi, cfg.ActMode)
}

func observedRange(pre []float32) (lo, hi float64) {
	if len(pre) == 0 {
		return -8, 8
	}
	lo, hi = float64(pre[0]), float64(pre[0])
	for _, v := range pre[1:] {
		if float64(v) < lo {
			lo = float64(v)
		}
		if float64(v) > hi {
			hi = float64(v)
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	return lo - 0.05*span, hi + 0.05*span
}

// sampleStatistics feeds a sampled slice of the training set forward and
// collects, for every layer, the operand values entering it and the
// pre-activation values it produces. The paper samples as little as 2 % of
// the training data (§3.1).
func sampleStatistics(net *nn.Network, ds *dataset.Dataset, cfg Config, iter int) (inputs, pres [][]float32, err error) {
	total := ds.TrainX.Dim(0)
	n := int(float64(total) * cfg.SampleFrac)
	if n < 32 {
		n = min(32, total)
	}
	in := ds.InSize()
	x := tensor.FromSlice(ds.TrainX.Data()[:n*in], n, in)

	inputs = make([][]float32, len(net.Layers))
	pres = make([][]float32, len(net.Layers))
	cur := x
	for i, l := range net.Layers {
		switch l.(type) {
		case *nn.Dense, *nn.Conv2D, *nn.Recurrent:
			inputs[i] = cluster.Sample(cur.Data(), sampleKeep(cur.Len()), 256, cfg.Seed+int64(1000*iter+i))
		}
		cur = l.Forward(cur, false)
		switch t := l.(type) {
		case *nn.Dense:
			pres[i] = cluster.Sample(t.PreActivations().Data(), sampleKeep(t.PreActivations().Len()), 256, cfg.Seed+int64(2000*iter+i))
		case *nn.Conv2D:
			pres[i] = cluster.Sample(t.PreActivations().Data(), sampleKeep(t.PreActivations().Len()), 256, cfg.Seed+int64(2000*iter+i))
		case *nn.Recurrent:
			pres[i] = cluster.Sample(t.PreActivations().Data(), sampleKeep(t.PreActivations().Len()), 256, cfg.Seed+int64(2000*iter+i))
			// The fed-back hidden state shares the input FIFO, so its values
			// join the input-codebook population.
			hidden := t.HiddenStates()
			inputs[i] = append(inputs[i],
				cluster.Sample(hidden, sampleKeep(len(hidden)), 256, cfg.Seed+int64(3000*iter+i))...)
		}
	}
	return inputs, pres, nil
}

// sampleKeep bounds per-layer statistic populations so k-means stays fast on
// wide layers while keeping every value for small ones.
func sampleKeep(n int) float64 {
	const budget = 20000
	if n <= budget {
		return 1
	}
	return float64(budget) / float64(n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// QuantizeWeightsInPlace snaps every compute layer's weights to its codebook
// values — the "replace all parameters with their closest centroids" step of
// Fig. 6b, applied before each retraining round.
func QuantizeWeightsInPlace(net *nn.Network, plans []*LayerPlan) {
	for i, l := range net.Layers {
		p := plans[i]
		switch t := l.(type) {
		case *nn.Dense:
			cb := p.WeightCodebooks[0]
			data := t.W.Value.Data()
			for j, v := range data {
				data[j] = cluster.Quantize(cb, v)
			}
		case *nn.Conv2D:
			k := t.W.Value.Dim(1)
			data := t.W.Value.Data()
			for ch := 0; ch < t.OutC; ch++ {
				cb := p.WeightCodebooks[p.ChannelCodebook[ch]]
				row := data[ch*k : (ch+1)*k]
				for j, v := range row {
					row[j] = cluster.Quantize(cb, v)
				}
			}
		case *nn.Recurrent:
			cb := p.WeightCodebooks[0]
			for _, w := range []*nn.Param{t.Wx, t.Wh} {
				data := w.Value.Data()
				for j, v := range data {
					data[j] = cluster.Quantize(cb, v)
				}
			}
		}
	}
}

// buildCodebook clusters a scalar population into at most k representatives,
// either with flat k-means or by growing a hierarchical tree and taking the
// deepest level within the budget (§3.1's reconfigurable codebooks).
func buildCodebook(samples []float32, k int, cfg Config, seed int64) []float32 {
	cb, _ := buildCodebookTree(samples, k, cfg, seed)
	return cb
}

// buildCodebookTree additionally returns the tree when tree codebooks are
// enabled, so plans can be reconfigured to shallower levels later.
func buildCodebookTree(samples []float32, k int, cfg Config, seed int64) ([]float32, *cluster.Tree) {
	if cfg.LinearCodebooks {
		return linearCodebook(samples, k), nil
	}
	if !cfg.UseTreeCodebooks {
		return cluster.KMeans(samples, k, cluster.Options{Seed: seed}), nil
	}
	depth := 1
	for (1 << (depth + 1)) <= k {
		depth++
	}
	tree := cluster.BuildTree(samples, depth, cluster.Options{Seed: seed})
	return tree.CodebookFor(k), tree
}

// ReconfigurePlans re-targets tree-codebook plans to new cluster budgets by
// selecting shallower (or equal) levels of the stored trees — the §3.3
// "adjustable parameter [that] selects the level of the codebook tree"
// without re-running k-means. It returns fresh plans; the inputs are not
// modified. Plans composed without UseTreeCodebooks are rejected.
func ReconfigurePlans(plans []*LayerPlan, maxW, maxU int) ([]*LayerPlan, error) {
	if maxW < 1 || maxU < 1 {
		return nil, fmt.Errorf("composer: reconfigure budgets w=%d u=%d", maxW, maxU)
	}
	out := make([]*LayerPlan, len(plans))
	for i, p := range plans {
		np := *p
		if p.IsCompute() {
			if len(p.WeightTrees) == 0 || p.InputTree == nil {
				return nil, fmt.Errorf("composer: plan %s has no codebook trees (compose with UseTreeCodebooks)", p.Name)
			}
			np.WeightCodebooks = make([][]float32, len(p.WeightCodebooks))
			for b := range p.WeightCodebooks {
				np.WeightCodebooks[b] = p.WeightTrees[b].CodebookFor(maxW)
			}
			np.InputCodebook = p.InputTree.CodebookFor(maxU)
		}
		out[i] = &np
	}
	return out, nil
}

// linearCodebook spreads k representatives uniformly over the sample range —
// the quantization-grid baseline the clustering approach improves on.
func linearCodebook(samples []float32, k int) []float32 {
	lo, hi := samples[0], samples[0]
	for _, v := range samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return []float32{lo}
	}
	if k == 1 {
		return []float32{(lo + hi) / 2}
	}
	cb := make([]float32, k)
	for i := range cb {
		cb[i] = lo + (hi-lo)*float32(i)/float32(k-1)
	}
	return cb
}
