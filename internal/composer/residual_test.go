package composer

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// The composer must handle residual layers transparently (§4.3): they are
// planned like their dense/conv base, the skip value arrives unquantized
// through the input FIFO, and the reinterpreted model keeps the identity
// path.
func TestComposeResidualNetwork(t *testing.T) {
	ds := dataset.Generate(dataset.Config{
		Name: "res", NumClasses: 4, InputShape: []int{16},
		Train: 300, Test: 100, Noise: 0.15, Seed: 9,
	})
	rng := rand.New(rand.NewSource(9))
	net := nn.NewNetwork("res").
		Add(nn.NewDense("in", 16, 24, nn.ReLU{}, rng)).
		Add(nn.NewResidualDense("res1", 24, nn.ReLU{}, rng)).
		Add(nn.NewDense("out", 24, 4, nn.Identity{}, rng))
	opt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	for epoch := 0; epoch < 15; epoch++ {
		ds.Batches(32, func(x *tensor.Tensor, labels []int) {
			net.TrainBatch(x, labels, opt)
		})
	}
	baseErr := net.ErrorRate(ds.TestX, ds.TestY, 64)
	if baseErr > 0.4 {
		t.Fatalf("residual baseline failed to learn: %v", baseErr)
	}
	cfg := DefaultConfig()
	cfg.MaxIterations = 2
	cfg.RetrainEpochs = 1
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.FinalError > baseErr+0.1 {
		t.Fatalf("residual reinterpretation lost too much: %v → %v", baseErr, c.FinalError)
	}
	// The residual layer's plan must look like a dense plan.
	if c.Plans[1].Kind != KindDense || c.Plans[1].W() == 0 {
		t.Fatalf("residual layer plan malformed: %+v", c.Plans[1])
	}
	// The reinterpreted clone must keep the identity path.
	re := NewReinterpreted(c.Net, c.Plans)
	if d, ok := re.Net().Layers[1].(*nn.Dense); !ok || !d.Skip {
		t.Fatal("reinterpreted clone dropped the skip connection")
	}
}
