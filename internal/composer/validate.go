package composer

import (
	"fmt"

	"repro/internal/nn"
)

// Load-time validation shared by the gob (RAPIDNN1) and flat (RAPIDNN2)
// readers. The loader is the trust boundary of the whole serving stack:
// everything downstream — the reinterpreted predictor, the hardware lowering,
// the NDCAM searches — indexes plan tables without re-checking them, so a
// corrupted artifact must be rejected here with a descriptive error, not
// discovered as a panic on a serving goroutine.

// expectedPlanKind maps a restored layer to the plan kind its composition
// must have produced.
func expectedPlanKind(l nn.Layer) (LayerKind, bool) {
	switch l.(type) {
	case *nn.Dense:
		return KindDense, true
	case *nn.Conv2D:
		return KindConv, true
	case *nn.Pool2D:
		return KindPool, true
	case *nn.Dropout:
		return KindDropout, true
	case *nn.Recurrent:
		return KindRecurrent, true
	}
	return 0, false
}

// sortedF32 reports whether s is non-decreasing — the invariant
// cluster.Assign's binary search and the NDCAM nearest-row semantics rely on.
func sortedF32(s []float32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// validatePlan checks one restored plan's internal consistency.
func validatePlan(p *LayerPlan) error {
	if p.Kind < KindDense || p.Kind > KindRecurrent {
		return fmt.Errorf("layer kind %d out of range", int(p.Kind))
	}
	if p.Neurons < 0 || p.Edges < 0 {
		return fmt.Errorf("negative geometry: neurons=%d edges=%d", p.Neurons, p.Edges)
	}
	if t := p.ActTable; t != nil {
		// A Y/Z length mismatch (or an empty Z) would escape Load today and
		// panic later inside ActTable.Eval / the NDCAM activation search on a
		// serving goroutine — exactly the corruption this check front-loads.
		if len(t.Z) == 0 {
			return fmt.Errorf("activation table %q has %d Y rows but an empty Z column", t.Name, len(t.Y))
		}
		if len(t.Y) != len(t.Z) {
			return fmt.Errorf("activation table %q has %d Y rows vs %d Z rows", t.Name, len(t.Y), len(t.Z))
		}
		if !sortedF32(t.Y) {
			return fmt.Errorf("activation table %q has an unsorted Y column", t.Name)
		}
	}
	if !p.IsCompute() {
		return nil
	}
	if p.Neurons <= 0 || p.Edges <= 0 {
		return fmt.Errorf("compute plan has non-positive geometry: neurons=%d edges=%d", p.Neurons, p.Edges)
	}
	if len(p.WeightCodebooks) == 0 {
		return fmt.Errorf("compute plan has no weight codebooks")
	}
	for b, cb := range p.WeightCodebooks {
		if len(cb) == 0 {
			return fmt.Errorf("weight codebook %d is empty", b)
		}
		if !sortedF32(cb) {
			return fmt.Errorf("weight codebook %d is unsorted", b)
		}
	}
	if len(p.InputCodebook) == 0 {
		return fmt.Errorf("compute plan has an empty input codebook")
	}
	if !sortedF32(p.InputCodebook) {
		return fmt.Errorf("input codebook is unsorted")
	}
	if len(p.ChannelCodebook) == 0 {
		return fmt.Errorf("compute plan has an empty channel→codebook map")
	}
	for ch, b := range p.ChannelCodebook {
		if b < 0 || b >= len(p.WeightCodebooks) {
			return fmt.Errorf("channel %d maps to codebook %d of %d", ch, b, len(p.WeightCodebooks))
		}
	}
	if len(p.Products) > 0 {
		// Pre-composed product tables (RAPIDNN2 only) must cover every
		// codebook group at the table geometry the lowering will index.
		if len(p.Products) != len(p.WeightCodebooks) {
			return fmt.Errorf("%d product tables for %d codebook groups", len(p.Products), len(p.WeightCodebooks))
		}
		for g, tab := range p.Products {
			if want := len(p.WeightCodebooks[g]) * len(p.InputCodebook); len(tab) != want {
				return fmt.Errorf("product table %d holds %d entries, codebooks want %d", g, len(tab), want)
			}
		}
	}
	return nil
}

// validateComposed cross-checks a fully restored model: plan/layer counts,
// per-plan consistency, plan-kind-vs-layer-kind agreement, and canary
// geometry. Both artifact readers run it as their final gate.
func validateComposed(c *Composed) error {
	if len(c.Plans) != len(c.Net.Layers) {
		return fmt.Errorf("composer: %d plans for %d layers", len(c.Plans), len(c.Net.Layers))
	}
	for i, p := range c.Plans {
		l := c.Net.Layers[i]
		want, ok := expectedPlanKind(l)
		if !ok {
			return fmt.Errorf("composer: plan %d (%s): unplannable layer type %T", i, p.Name, l)
		}
		if p.Kind != want {
			return fmt.Errorf("composer: plan %d (%s) has kind %s but layer %s is %s",
				i, p.Name, p.Kind, l.Name(), want)
		}
		if err := validatePlan(p); err != nil {
			return fmt.Errorf("composer: plan %d (%s): %w", i, p.Name, err)
		}
	}
	for i, cn := range c.Canaries {
		if len(cn.Input) != c.Net.InSize() {
			return fmt.Errorf("composer: canary %d has %d features, network wants %d",
				i, len(cn.Input), c.Net.InSize())
		}
		if cn.Pred < 0 || cn.Pred >= c.Net.OutSize() {
			return fmt.Errorf("composer: canary %d predicts class %d of %d", i, cn.Pred, c.Net.OutSize())
		}
	}
	return nil
}
