package composer

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Tree codebooks (§3.1/§3.3) must compose with accuracy comparable to flat
// k-means, while bounding every codebook by the configured budget.
func TestComposeWithTreeCodebooks(t *testing.T) {
	net, ds := trainedFixture(t)
	flat := fastConfig()
	flat.MaxIterations = 1
	tree := flat
	tree.UseTreeCodebooks = true

	cf, err := Compose(net, ds, flat)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Compose(net, ds, tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ct.Plans {
		if !p.IsCompute() {
			continue
		}
		if p.W() > tree.WeightClusters || p.U() > tree.InputClusters {
			t.Fatalf("tree codebook exceeded budget: w=%d u=%d", p.W(), p.U())
		}
	}
	// The tree trades a little WCSS for reconfigurability; accuracy must stay
	// in the same neighbourhood.
	if ct.FinalError > cf.FinalError+0.05 {
		t.Fatalf("tree codebooks lost too much: flat %v vs tree %v", cf.FinalError, ct.FinalError)
	}
}

// The composer must reinterpret recurrent layers (§4.3): weights from both
// matrices share a codebook, inputs are encoded, and the activation goes
// through the lookup table.
func TestComposeRecurrentNetwork(t *testing.T) {
	const steps, in = 5, 4
	rng := rand.New(rand.NewSource(17))
	ds := dataset.Generate(dataset.Config{
		Name: "seq", NumClasses: 3, InputShape: []int{steps * in},
		Train: 400, Test: 120, Noise: 0.15, Seed: 18,
	})
	net := nn.NewNetwork("rnn").
		Add(nn.NewRecurrent("rnn", in, 16, steps, nn.Tanh{}, rng)).
		Add(nn.NewDense("out", 16, 3, nn.Identity{}, rng))
	opt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	for epoch := 0; epoch < 25; epoch++ {
		ds.Batches(32, func(x *tensor.Tensor, labels []int) {
			net.TrainBatch(x, labels, opt)
		})
	}
	base := net.ErrorRate(ds.TestX, ds.TestY, 64)
	if base > 0.4 {
		t.Fatalf("RNN baseline failed to learn: %v", base)
	}

	cfg := DefaultConfig()
	cfg.MaxIterations = 2
	cfg.RetrainEpochs = 1
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.FinalError > base+0.15 {
		t.Fatalf("recurrent reinterpretation lost too much: %v → %v", base, c.FinalError)
	}
	plan := c.Plans[0]
	if plan.Kind != KindRecurrent || !plan.IsCompute() {
		t.Fatalf("recurrent plan kind = %v", plan.Kind)
	}
	if plan.Neurons != 16 || plan.Edges != steps*(in+16) {
		t.Fatalf("recurrent plan geometry: neurons=%d edges=%d", plan.Neurons, plan.Edges)
	}
	if plan.ActTable == nil {
		t.Fatal("tanh recurrent layer must get an activation table")
	}
	// The reinterpreted model must run.
	re := NewReinterpreted(c.Net, c.Plans)
	x := tensor.FromSlice(ds.TestX.Data()[:4*steps*in], 4, steps*in)
	if out := re.Forward(x); out.Dim(1) != 3 {
		t.Fatalf("reinterpreted RNN output shape %v", out.Shape())
	}
}

func TestReconfigurePlansLevels(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.UseTreeCodebooks = true
	cfg.MaxIterations = 1
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Downshift to w≤8, u≤16 without re-clustering.
	plans, err := ReconfigurePlans(c.Plans, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if !p.IsCompute() {
			continue
		}
		if p.W() > 8 || p.U() > 16 {
			t.Fatalf("reconfigured plan exceeds budget: w=%d u=%d", p.W(), p.U())
		}
	}
	// Originals untouched.
	for _, p := range c.Plans {
		if p.IsCompute() && (p.W() < 16 || p.U() < 16) {
			t.Fatalf("original plans were mutated: w=%d u=%d", p.W(), p.U())
		}
	}
	// The coarser model still runs and is not absurdly worse.
	re := NewReinterpreted(c.Net, plans)
	coarse := re.ErrorRate(ds.TestX, ds.TestY, 64)
	if coarse > c.FinalError+0.3 {
		t.Fatalf("level downshift destroyed the model: %v → %v", c.FinalError, coarse)
	}
}

func TestReconfigurePlansRequiresTrees(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.MaxIterations = 1 // flat codebooks
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconfigurePlans(c.Plans, 8, 8); err == nil {
		t.Fatal("flat plans must refuse reconfiguration")
	}
	if _, err := ReconfigurePlans(c.Plans, 0, 8); err == nil {
		t.Fatal("zero budget must error")
	}
}

// §1/§6: k-means codebooks must lose no more accuracy than uniform
// (linear-grid) quantization at the same codebook sizes — the reason the
// composer clusters instead of gridding.
func TestKMeansBeatsLinearCodebooks(t *testing.T) {
	net, ds := trainedFixture(t)
	errWith := func(linear bool) float64 {
		cfg := fastConfig()
		cfg.WeightClusters, cfg.InputClusters = 4, 8
		cfg.MaxIterations = 1 // isolate the codebook quality
		cfg.LinearCodebooks = linear
		c, err := Compose(net, ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.FinalError
	}
	kmeans := errWith(false)
	linear := errWith(true)
	if kmeans > linear+0.01 {
		t.Fatalf("k-means codebooks (%.3f error) worse than linear grids (%.3f)", kmeans, linear)
	}
}
