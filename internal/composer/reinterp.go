package composer

import (
	"repro/internal/cluster"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Reinterpreted is the software model of the memory-based network (§3.2,
// "error estimation module forms a software version of the reinterpreted
// DNN"): weights are snapped to their codebooks, every compute layer's
// operands are encoded onto its input codebook (the virtual layer of §2.2
// handles the raw input), and activation functions go through their lookup
// tables. Its classification error is exactly what the RNA hardware
// produces, because the hardware computes with the same finite tables.
type Reinterpreted struct {
	plans []*LayerPlan
	qnet  *nn.Network // clone with quantized weights and table activations
}

// tableAct adapts a quant.ActTable to the nn.Activation interface so the
// quantized clone's layers evaluate through the lookup table.
type tableAct struct {
	tab  interface{ Eval(float32) float32 }
	name string
}

func (t tableAct) Name() string              { return t.name + "-table" }
func (t tableAct) Eval(x float64) float64    { return float64(t.tab.Eval(float32(x))) }
func (t tableAct) Grad(_, _ float64) float64 { panic("composer: table activations are inference-only") }

// NewReinterpreted builds the reinterpreted model for net under plans.
// net is cloned; the caller's network is untouched.
func NewReinterpreted(net *nn.Network, plans []*LayerPlan) *Reinterpreted {
	q := nn.CloneNetwork(net)
	QuantizeWeightsInPlace(q, plans)
	for i, l := range q.Layers {
		p := plans[i]
		if p.ActTable == nil {
			continue
		}
		switch t := l.(type) {
		case *nn.Dense:
			t.Act = tableAct{tab: p.ActTable, name: t.Act.Name()}
		case *nn.Conv2D:
			t.Act = tableAct{tab: p.ActTable, name: t.Act.Name()}
		case *nn.Recurrent:
			t.Act = tableAct{tab: p.ActTable, name: t.Act.Name()}
		}
	}
	return &Reinterpreted{plans: plans, qnet: q}
}

// Forward runs the reinterpreted model on a [batch, in] input, encoding the
// operands of every compute layer onto its input codebook before the
// weighted accumulation.
func (r *Reinterpreted) Forward(x *tensor.Tensor) *tensor.Tensor {
	for i, l := range r.qnet.Layers {
		p := r.plans[i]
		if p.IsCompute() {
			x = quantizeTensor(x, p.InputCodebook)
		}
		x = l.Forward(x, false)
	}
	return x
}

// Predict returns the argmax class per row.
func (r *Reinterpreted) Predict(x *tensor.Tensor) []int {
	return nn.Argmax(r.Forward(x))
}

// ErrorRate evaluates the reinterpreted model's misclassification rate.
func (r *Reinterpreted) ErrorRate(x *tensor.Tensor, labels []int, batchSize int) float64 {
	total := x.Dim(0)
	in := r.qnet.InSize()
	if batchSize <= 0 {
		batchSize = 64
	}
	wrong := 0
	for start := 0; start < total; start += batchSize {
		end := start + batchSize
		if end > total {
			end = total
		}
		b := end - start
		xb := tensor.FromSlice(x.Data()[start*in:end*in], b, in)
		for i, pr := range r.Predict(xb) {
			if pr != labels[start+i] {
				wrong++
			}
		}
	}
	return float64(wrong) / float64(total)
}

// Plans exposes the layer plans driving this model.
func (r *Reinterpreted) Plans() []*LayerPlan { return r.plans }

// Net exposes the quantized clone (weights snapped to codebooks).
func (r *Reinterpreted) Net() *nn.Network { return r.qnet }

func quantizeTensor(x *tensor.Tensor, codebook []float32) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	for i, v := range x.Data() {
		out.Data()[i] = cluster.Quantize(codebook, v)
	}
	return out
}
