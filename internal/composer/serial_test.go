package composer

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSaveLoadRoundTripDense(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.MaxIterations = 1
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FinalError != c.FinalError || loaded.BaselineError != c.BaselineError {
		t.Fatal("quality metadata lost")
	}
	// The loaded model must classify identically.
	reA := NewReinterpreted(c.Net, c.Plans)
	reB := NewReinterpreted(loaded.Net, loaded.Plans)
	in := ds.InSize()
	x := tensor.FromSlice(ds.TestX.Data()[:16*in], 16, in)
	pa, pb := reA.Predict(x), reB.Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs after round trip: %d vs %d", i, pa[i], pb[i])
		}
	}
}

func TestSaveLoadAllLayerKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := nn.NewConv2D("cv", g, 2, nn.Sigmoid{}, rng)
	pg := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 2, KW: 2, Stride: 2}
	net := nn.NewNetwork("kinds").
		Add(conv).
		Add(nn.NewPool2D("pl", nn.MaxPool, pg)).
		Add(nn.NewDense("fc", 18, 18, nn.Tanh{}, rng)).
		Add(nn.NewResidualDense("res", 18, nn.ReLU{}, rng)).
		Add(nn.NewDropout("do", 18, 0.1, rng)).
		Add(nn.NewDense("out", 18, 3, nn.Identity{}, rng))
	plans := SyntheticPlans(net, 8, 8, 16)
	c := &Composed{Net: net, Plans: plans, BaselineError: 0.1, FinalError: 0.12, TotalEpochs: 3}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Net.Layers) != len(net.Layers) {
		t.Fatalf("layer count %d, want %d", len(loaded.Net.Layers), len(net.Layers))
	}
	// Residual flag and weights must survive.
	res := loaded.Net.Layers[3].(*nn.Dense)
	if !res.Skip {
		t.Fatal("residual flag lost")
	}
	orig := net.Layers[3].(*nn.Dense)
	if !res.W.Value.Equal(orig.W.Value, 0) {
		t.Fatal("weights corrupted")
	}
	// Forward passes agree exactly.
	x := tensor.New(2, net.InSize())
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	if !loaded.Net.Forward(x, false).Equal(net.Forward(x, false), 1e-6) {
		t.Fatal("loaded network computes differently")
	}
}

func TestSaveLoadRecurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	net := nn.NewNetwork("rnn").
		Add(nn.NewRecurrent("rnn", 3, 6, 4, nn.Tanh{}, rng)).
		Add(nn.NewDense("out", 6, 2, nn.Identity{}, rng))
	plans := SyntheticPlans(net, 8, 8, 16)
	if plans[0].Kind != KindRecurrent || plans[0].Edges != 4*(3+6) {
		t.Fatalf("synthetic recurrent plan malformed: %+v", plans[0])
	}
	c := &Composed{Net: net, Plans: plans}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 12)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	if !loaded.Net.Forward(x, false).Equal(net.Forward(x, false), 1e-6) {
		t.Fatal("loaded RNN computes differently")
	}
	if loaded.Plans[0].Kind != KindRecurrent {
		t.Fatal("plan kind lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage must fail to load")
	}
}
