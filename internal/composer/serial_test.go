package composer

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSaveLoadRoundTripDense(t *testing.T) {
	net, ds := trainedFixture(t)
	cfg := fastConfig()
	cfg.MaxIterations = 1
	c, err := Compose(net, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FinalError != c.FinalError || loaded.BaselineError != c.BaselineError {
		t.Fatal("quality metadata lost")
	}
	// The loaded model must classify identically.
	reA := NewReinterpreted(c.Net, c.Plans)
	reB := NewReinterpreted(loaded.Net, loaded.Plans)
	in := ds.InSize()
	x := tensor.FromSlice(ds.TestX.Data()[:16*in], 16, in)
	pa, pb := reA.Predict(x), reB.Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs after round trip: %d vs %d", i, pa[i], pb[i])
		}
	}
}

func TestSaveLoadAllLayerKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := nn.NewConv2D("cv", g, 2, nn.Sigmoid{}, rng)
	pg := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 2, KW: 2, Stride: 2}
	net := nn.NewNetwork("kinds").
		Add(conv).
		Add(nn.NewPool2D("pl", nn.MaxPool, pg)).
		Add(nn.NewDense("fc", 18, 18, nn.Tanh{}, rng)).
		Add(nn.NewResidualDense("res", 18, nn.ReLU{}, rng)).
		Add(nn.NewDropout("do", 18, 0.1, rng)).
		Add(nn.NewDense("out", 18, 3, nn.Identity{}, rng))
	plans := SyntheticPlans(net, 8, 8, 16)
	c := &Composed{Net: net, Plans: plans, BaselineError: 0.1, FinalError: 0.12, TotalEpochs: 3}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Net.Layers) != len(net.Layers) {
		t.Fatalf("layer count %d, want %d", len(loaded.Net.Layers), len(net.Layers))
	}
	// Residual flag and weights must survive.
	res := loaded.Net.Layers[3].(*nn.Dense)
	if !res.Skip {
		t.Fatal("residual flag lost")
	}
	orig := net.Layers[3].(*nn.Dense)
	if !res.W.Value.Equal(orig.W.Value, 0) {
		t.Fatal("weights corrupted")
	}
	// Forward passes agree exactly.
	x := tensor.New(2, net.InSize())
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	if !loaded.Net.Forward(x, false).Equal(net.Forward(x, false), 1e-6) {
		t.Fatal("loaded network computes differently")
	}
}

func TestSaveLoadRecurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	net := nn.NewNetwork("rnn").
		Add(nn.NewRecurrent("rnn", 3, 6, 4, nn.Tanh{}, rng)).
		Add(nn.NewDense("out", 6, 2, nn.Identity{}, rng))
	plans := SyntheticPlans(net, 8, 8, 16)
	if plans[0].Kind != KindRecurrent || plans[0].Edges != 4*(3+6) {
		t.Fatalf("synthetic recurrent plan malformed: %+v", plans[0])
	}
	c := &Composed{Net: net, Plans: plans}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 12)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	if !loaded.Net.Forward(x, false).Equal(net.Forward(x, false), 1e-6) {
		t.Fatal("loaded RNN computes differently")
	}
	if loaded.Plans[0].Kind != KindRecurrent {
		t.Fatal("plan kind lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

// snapshotBytes serializes a small dense model and returns the raw gob
// stream, for the corruption tests to mangle.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(53))
	// Sigmoid (not ReLU) so the first plan carries an ActTable for the
	// activation-table corruption cases.
	net := nn.NewNetwork("hard").
		Add(nn.NewDense("fc", 6, 5, nn.Sigmoid{}, rng)).
		Add(nn.NewDense("out", 5, 2, nn.Identity{}, rng))
	c := &Composed{Net: net, Plans: SyntheticPlans(net, 8, 8, 16)}
	c.SynthesizeCanaries(2, 53)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadTruncatedStream(t *testing.T) {
	raw := snapshotBytes(t)
	// Every prefix must fail with a wrapped error, never a panic — including
	// the empty stream and a cut in the middle of the weight payload.
	for _, n := range []int{0, 1, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		c, err := Load(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes loaded successfully", n, len(raw))
		}
		if c != nil {
			t.Fatalf("truncation at %d bytes returned a non-nil model with error %v", n, err)
		}
		if !strings.Contains(err.Error(), "composer:") {
			t.Fatalf("truncation at %d bytes: error %q not wrapped with package context", n, err)
		}
	}
}

func TestLoadCorruptedBytes(t *testing.T) {
	raw := snapshotBytes(t)
	// Flip bytes at positions spread across the stream. Every corruption must
	// come back as an error or — when the flip happens to leave the stream
	// decodable and consistent — a well-formed model; never a panic.
	for pos := 0; pos < len(raw); pos += len(raw)/37 + 1 {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xff
		c, err := Load(bytes.NewReader(mut))
		if err == nil && c == nil {
			t.Fatalf("flip at byte %d: nil model with nil error", pos)
		}
	}
}

func TestLoadWrongMagicNamesFormat(t *testing.T) {
	var buf bytes.Buffer
	snap := modelSnapshot{Magic: "NOTAMODEL"}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil {
		t.Fatal("wrong magic must fail to load")
	}
	if !strings.Contains(err.Error(), serialMagic) {
		t.Fatalf("magic-mismatch error %q does not name the expected %s format", err, serialMagic)
	}
	if !strings.Contains(err.Error(), "NOTAMODEL") {
		t.Fatalf("magic-mismatch error %q does not echo the bogus magic", err)
	}
}

func TestLoadRejectsMismatchedWeightLength(t *testing.T) {
	raw := snapshotBytes(t)
	var snap modelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	// A snapshot whose weight slice disagrees with the declared geometry must
	// be rejected by name, not crash the tensor fill.
	snap.Layers[0].W = snap.Layers[0].W[:len(snap.Layers[0].W)-3]
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil {
		t.Fatal("mismatched weight length must fail to load")
	}
	for _, want := range []string{"layer 0", "fc", "weight"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestLoadRejectsInconsistentPlans is the gob-side regression suite of the
// loader-hardening sweep: snapshots that decode as valid gob but describe an
// inconsistent plan previously escaped Load and detonated later on a serving
// goroutine (ActTable.Eval indexing a short Z column, downstream code
// trusting negative geometry or a mislabeled kind). Every case must now be
// rejected at load time with a descriptive error.
func TestLoadRejectsInconsistentPlans(t *testing.T) {
	raw := snapshotBytes(t)
	cases := []struct {
		name   string
		errHas string
		mutate func(s *modelSnapshot)
	}{
		{"short ActZ", "Z rows", func(s *modelSnapshot) { s.Plans[0].ActZ = s.Plans[0].ActZ[:3] }},
		{"empty Z", "empty Z", func(s *modelSnapshot) { s.Plans[0].ActZ = nil }},
		{"unsorted ActY", "unsorted", func(s *modelSnapshot) {
			s.Plans[0].ActY[0] = s.Plans[0].ActY[1] + 1
		}},
		{"negative neurons", "geometry", func(s *modelSnapshot) { s.Plans[0].Neurons = -4 }},
		{"negative edges", "geometry", func(s *modelSnapshot) { s.Plans[1].Edges = -1 }},
		{"kind out of range", "kind", func(s *modelSnapshot) { s.Plans[0].Kind = 17 }},
		{"plan kind vs layer kind", "kind", func(s *modelSnapshot) { s.Plans[0].Kind = int(KindConv) }},
		{"channel to missing codebook", "codebook", func(s *modelSnapshot) { s.Plans[0].ChannelCodebook = []int{9} }},
		{"empty input codebook", "input codebook", func(s *modelSnapshot) { s.Plans[0].InputCodebook = nil }},
		{"canary class out of range", "canary", func(s *modelSnapshot) { s.Canaries[0].Pred = 99 }},
	}
	for _, tc := range cases {
		var snap modelSnapshot
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		tc.mutate(&snap)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			t.Fatal(err)
		}
		m, err := Load(&buf)
		if err == nil {
			t.Fatalf("%s: inconsistent snapshot loaded successfully", tc.name)
		}
		if m != nil {
			t.Fatalf("%s: non-nil model alongside error %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.errHas) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.errHas)
		}
	}
}

func TestSaveLoadPreservesPlanIndexAndRawInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	net := nn.NewNetwork("idx").
		Add(nn.NewDense("fc", 6, 5, nn.Sigmoid{}, rng)).
		Add(nn.NewDense("out", 5, 2, nn.Identity{}, rng))
	c := &Composed{Net: net, Plans: SyntheticPlans(net, 8, 8, 16)}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range loaded.Plans {
		if p.Index != c.Plans[i].Index {
			t.Fatalf("plan %d: Index %d, want %d (silently dropped by the snapshot schema)", i, p.Index, c.Plans[i].Index)
		}
		if p.RawInputs != c.Plans[i].RawInputs {
			t.Fatalf("plan %d: RawInputs %d, want %d", i, p.RawInputs, c.Plans[i].RawInputs)
		}
	}
}

func TestLoadRejectsInvalidGeometry(t *testing.T) {
	raw := snapshotBytes(t)
	cases := []struct {
		name   string
		mutate func(s *modelSnapshot)
	}{
		{"negative dense out", func(s *modelSnapshot) { s.Layers[0].Out = -4 }},
		{"unknown activation", func(s *modelSnapshot) { s.Layers[0].Act = "sincos" }},
		{"unknown layer kind", func(s *modelSnapshot) { s.Layers[0].Kind = "attention" }},
		{"plan/layer mismatch", func(s *modelSnapshot) { s.Plans = s.Plans[:1] }},
	}
	for _, tc := range cases {
		var snap modelSnapshot
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		tc.mutate(&snap)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(&buf); err == nil {
			t.Fatalf("%s: snapshot must fail to load", tc.name)
		}
	}
}
