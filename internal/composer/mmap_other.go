//go:build !unix

package composer

import "os"

// mmapFile on platforms without syscall.Mmap falls back to reading the whole
// file; release frees nothing, the slice is ordinary heap memory.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
