package composer

import (
	"repro/internal/nn"
)

// Histogram is a fixed-bin weight histogram, the raw material of Fig. 6.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// NonZeroBins counts bins with at least one weight — clustering collapses
// the distribution onto ≤ w spikes, so this drops sharply (Fig. 6b).
func (h *Histogram) NonZeroBins() int {
	n := 0
	for _, c := range h.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// WeightHistogram bins the weights of the idx-th layer of net (which must be
// a Dense or Conv2D layer) into the given number of equal-width bins.
func WeightHistogram(net *nn.Network, idx, bins int) *Histogram {
	var data []float32
	switch t := net.Layers[idx].(type) {
	case *nn.Dense:
		data = t.W.Value.Data()
	case *nn.Conv2D:
		data = t.W.Value.Data()
	default:
		panic("composer: WeightHistogram needs a compute layer")
	}
	lo, hi := float64(data[0]), float64(data[0])
	for _, v := range data {
		if float64(v) < lo {
			lo = float64(v)
		}
		if float64(v) > hi {
			hi = float64(v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, v := range data {
		b := int(float64(bins) * (float64(v) - lo) / (hi - lo))
		if b == bins {
			b = bins - 1
		}
		h.Counts[b]++
	}
	return h
}

// MemoryModel converts a composition into the accelerator's table storage
// footprint. ProductBits is the stored width of each precomputed
// multiplication result (the paper's ≈5 KB/neuron at w=u=64 corresponds to
// ~10 bits per entry); table Y/Z rows are stored at 32 bits.
type MemoryModel struct {
	ProductBits int
	ActRowBits  int
	EncRowBits  int
}

// DefaultMemoryModel matches the paper's ≈5 KB-per-neuron figure.
func DefaultMemoryModel() MemoryModel {
	return MemoryModel{ProductBits: 10, ActRowBits: 64, EncRowBits: 32}
}

// NeuronBytes returns the per-neuron table bytes for a compute plan:
// the w·u product crossbar, the activation AM, and the encoding AM.
func (m MemoryModel) NeuronBytes(p *LayerPlan) int64 {
	if !p.IsCompute() {
		return 0
	}
	bits := int64(p.W()) * int64(p.U()) * int64(m.ProductBits)
	if p.ActTable != nil {
		bits += int64(p.ActTable.Rows()) * int64(m.ActRowBits)
	}
	bits += int64(p.U()) * int64(m.EncRowBits)
	return (bits + 7) / 8
}

// TotalBytes returns the accelerator-wide table footprint: every neuron owns
// its RNA tables (Fig. 12's memory-usage series).
func (m MemoryModel) TotalBytes(plans []*LayerPlan) int64 {
	var total int64
	for _, p := range plans {
		total += m.NeuronBytes(p) * int64(p.Neurons)
	}
	return total
}
