package rapidnn_test

import (
	"fmt"

	rapidnn "repro"
)

// Example runs the whole RAPIDNN pipeline on a small synthetic task: train a
// model, reinterpret it for in-memory execution, check the accuracy cost,
// and simulate the accelerator deployment.
func Example() {
	ds := rapidnn.SyntheticDataset("demo", 24, 3, 300, 90, 0.12, 7)
	net := rapidnn.NewMLP("demo", ds.Features(), []int{16}, ds.Classes(), 7)

	opt := rapidnn.DefaultTrainOptions()
	opt.Epochs = 12
	baseErr := net.Train(ds, opt)

	composed, err := net.Compose(ds, rapidnn.ComposeOptions{
		WeightClusters: 16, InputClusters: 16, MaxIterations: 2,
	})
	if err != nil {
		panic(err)
	}
	report, err := composed.Simulate(rapidnn.DeployOptions{Chips: 1})
	if err != nil {
		panic(err)
	}

	fmt.Println("baseline learned:", baseErr < 0.2)
	fmt.Println("dE within 5%:", composed.DeltaE() <= 0.05)
	fmt.Println("fits one chip:", report.Multiplex == 1)
	fmt.Println("energy accounted:", report.EnergyPerInput > 0)
	// Output:
	// baseline learned: true
	// dE within 5%: true
	// fits one chip: true
	// energy accounted: true
}

// ExampleComposed_Tune shows tree-codebook precision re-targeting (§3.1):
// compose once with hierarchical codebooks, then downshift to a cheaper
// level without re-clustering or retraining.
func ExampleComposed_Tune() {
	ds := rapidnn.SyntheticDataset("tune", 24, 3, 300, 90, 0.12, 9)
	net := rapidnn.NewMLP("tune", ds.Features(), []int{16}, ds.Classes(), 9)
	opt := rapidnn.DefaultTrainOptions()
	opt.Epochs = 12
	net.Train(ds, opt)

	full, err := net.Compose(ds, rapidnn.ComposeOptions{
		WeightClusters: 32, InputClusters: 32, MaxIterations: 1, TreeCodebooks: true,
	})
	if err != nil {
		panic(err)
	}
	small, err := full.Tune(8, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println("tables shrank:", small.MemoryBytes() < full.MemoryBytes())
	fmt.Println("still a valid model:", small.Error() <= 1)
	// Output:
	// tables shrank: true
	// still a valid model: true
}
