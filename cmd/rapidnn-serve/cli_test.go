package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/composer"
	"repro/internal/nn"
)

// buildBinary compiles the command under test into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "rapidnn-serve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func saveArtifact(t *testing.T, path string, c *composer.Composed) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// End-to-end through the real binary: a corrupted artifact on disk (stale
// canaries) boots, the -canary-interval loop flips /healthz to degraded and
// sheds its predict traffic with 503s, while the healthy sibling keeps
// answering 200.
func TestServeCLIShedsCorruptArtifact(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()

	rng := rand.New(rand.NewSource(5))
	net := nn.NewNetwork("cli").
		Add(nn.NewDense("fc1", 12, 10, nn.ReLU{}, rng)).
		Add(nn.NewDense("out", 10, 4, nn.Identity{}, rng))
	c := &composer.Composed{Net: net, Plans: composer.SyntheticPlans(net, 8, 8, 16)}
	c.SynthesizeCanaries(8, 1)
	good := filepath.Join(dir, "healthy.rapidnn")
	saveArtifact(t, good, c)

	// Scramble the weights but keep the now-stale canaries: the artifact
	// still loads, but its embedded golden answers no longer match.
	w := net.Layers[0].(*nn.Dense).W.Value.Data()
	crng := rand.New(rand.NewSource(99))
	for i := range w {
		w[i] = crng.Float32()*10 - 5
	}
	if failed, err := c.CheckCanaries(); err != nil || failed == 0 {
		t.Fatalf("corruption did not invalidate the canaries: failed=%d err=%v", failed, err)
	}
	bad := filepath.Join(dir, "sick.rapidnn")
	saveArtifact(t, bad, c)

	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(bin,
		"-model", "healthy="+good, "-model", "sick="+bad,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-canary-interval", "25ms", "-max-delay", "1ms")
	var logBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logBuf, &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	defer stop()
	// fail stops the server first so reading its log buffer is safe.
	fail := func(format string, args ...any) {
		t.Helper()
		stop()
		t.Fatalf(format+"\nserver log:\n%s", append(args, logBuf.String())...)
	}

	deadline := time.Now().Add(15 * time.Second)
	var addr string
	for addr == "" {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			fail("server never wrote its address file")
		}
		time.Sleep(20 * time.Millisecond)
	}
	base := "http://" + addr

	// The canary loop must degrade the corrupted model on its own.
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			var body struct {
				Status   string   `json:"status"`
				Degraded []string `json:"degraded_models"`
			}
			json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable && body.Status == "degraded" &&
				len(body.Degraded) == 1 && body.Degraded[0] == "sick" {
				break
			}
		}
		if time.Now().After(deadline) {
			fail("healthz never reported the corrupted model degraded")
		}
		time.Sleep(20 * time.Millisecond)
	}

	predict := func(model string) int {
		body, _ := json.Marshal(map[string]any{
			"model": model, "inputs": [][]float32{make([]float32, 12)},
		})
		resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			fail("predict %s: %v", model, err)
		}
		defer resp.Body.Close()
		var pr struct {
			Predictions []int `json:"predictions"`
		}
		json.NewDecoder(resp.Body).Decode(&pr)
		if resp.StatusCode == http.StatusOK && len(pr.Predictions) != 1 {
			fail("predict %s: 200 with %d predictions", model, len(pr.Predictions))
		}
		return resp.StatusCode
	}
	if code := predict("healthy"); code != http.StatusOK {
		fail("healthy model answered %d, want 200", code)
	}
	if code := predict("sick"); code != http.StatusServiceUnavailable {
		fail("degraded model answered %d, want 503", code)
	}
}
