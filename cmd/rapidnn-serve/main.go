// Command rapidnn-serve exposes composed models over HTTP: it loads
// .rapidnn artifacts saved by rapidnn-compose, instantiates the
// reinterpreted software path (and, with -hw, the functional-hardware
// validation path), and serves predictions through a dynamic micro-batcher
// with bounded-queue backpressure, graceful shutdown and a metrics surface.
//
// Usage:
//
//	rapidnn-serve -model mnist.rapidnn [-model name=path ...] [-addr :8080]
//	rapidnn-serve -demo MNIST          # synthetic model, no artifact needed
//	rapidnn-serve -model m.rapidnn -canary-interval 30s   # periodic self-tests
//
// With -canary-interval set, every model replays its embedded golden canary
// vectors on that cadence; a diverging model flips /healthz and /v1/models to
// degraded and its predict traffic is shed with 503s until POST /v1/scrub
// reloads it.
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/predict -d '{"inputs": [[0.1, 0.5, ...]]}'
//	curl -s localhost:8080/stats
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/composer"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
)

// modelFlags collects repeated -model values: either "path" (name from the
// file's base name) or "name=path".
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rapidnn-serve: %v\n", err)
	os.Exit(1)
}

// registerWith announces this replica to a rapidnn-router so it joins the
// routing ring without appearing in the router's -replica flags. A wildcard
// listen address is rewritten to loopback: the router must be handed a URL
// it can actually dial.
func registerWith(router string, bound net.Addr) error {
	host, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return err
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	body, err := json.Marshal(map[string]string{
		"url": fmt.Sprintf("http://%s", net.JoinHostPort(host, port)),
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(router, "/")+"/fleet/register",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("router answered HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// writeFileWith streams an exporter (WritePrometheus, WriteChromeTrace) into
// a freshly created file.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var models modelFlags
	flag.Var(&models, "model", "composed-model artifact to serve: path or name=path (repeatable)")
	demo := flag.String("demo", "", "serve a synthetic untrained model shaped like this benchmark dataset instead of an artifact")
	addr := flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for a random port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	hw := flag.Bool("hw", false, "also lower models to the functional-hardware path (validation-grade, slow)")
	workers := flag.Int("workers", 0, "hardware-path worker goroutines per batch (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 16, "micro-batcher: close a batch at this many requests")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "micro-batcher: close a batch this long after its first request")
	queue := flag.Int("queue", 256, "admission queue depth; a full queue answers 503 + Retry-After")
	timeout := flag.Duration("timeout", 30*time.Second, "server-side per-request deadline (0 = none)")
	canaryInterval := flag.Duration("canary-interval", 0, "periodic canary self-test interval; degraded models are shed with 503s until scrubbed (0 = disabled)")
	metricsOut := flag.String("metrics", "", "write a final Prometheus metrics snapshot to this file on drain (GET /metrics serves them live regardless)")
	traceOut := flag.String("trace-out", "", "record per-batch serving spans and write a Chrome trace (chrome://tracing, Perfetto) to this file on drain")
	replicaID := flag.String("replica-id", "", "stamp every metric series with replica=\"...\" so a fleet scrape can tell replicas apart")
	tenantRate := flag.Float64("tenant-rps", 0, "per-tenant admission quota in requests/second; over-quota tenants are shed with 429 (0 = disabled)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant quota burst capacity (0 = 2x rate)")
	register := flag.String("register", "", "rapidnn-router base URL to register this replica with once listening")
	tenantMax := flag.Int("tenant-max", 0, "max tracked per-tenant quota buckets before LRU eviction (0 = default 4096)")
	chaosSpec := flag.String("chaos", "", "failpoint spec, e.g. 'serve.predict=latency:50ms@0.1;serve.predict=http:500@0.05' (enables POST /chaos)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic failpoint engine")
	flag.Parse()

	var eng *chaos.Engine
	if *chaosSpec != "" {
		rules, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fail(fmt.Errorf("-chaos: %w", err))
		}
		eng = chaos.New(*chaosSeed)
		if err := eng.Set(rules); err != nil {
			fail(fmt.Errorf("-chaos: %w", err))
		}
		fmt.Printf("chaos engine armed (seed %d): %s\n", *chaosSeed, *chaosSpec)
	}

	reg := serve.NewRegistry()
	for _, mf := range models {
		m, err := serve.LoadModelFile(mf.name, mf.path, *hw, *workers)
		if err != nil {
			fail(err)
		}
		if err := reg.Add(m); err != nil {
			fail(err)
		}
		fmt.Printf("loaded %s from %s: %s (%d features -> %d classes)\n",
			m.Name, mf.path, m.Composed.Net.Topology(), m.InSize(), m.Classes())
	}
	if *demo != "" {
		// The demo model's answers are arbitrary (untrained weights, evenly
		// spaced synthetic codebooks) but deterministic — enough to exercise
		// the full serving path without a compose run.
		ds, err := dataset.ByName(*demo, dataset.Small)
		if err != nil {
			fail(err)
		}
		net := model.FCNet("demo-"+ds.Name, ds.InSize(), ds.NumClasses, 0.05, 1)
		c := &composer.Composed{Net: net, Plans: composer.SyntheticPlans(net, 16, 16, 32)}
		m, err := serve.NewModel("demo", c, *hw, *workers)
		if err != nil {
			fail(err)
		}
		if err := reg.Add(m); err != nil {
			fail(err)
		}
		fmt.Printf("serving synthetic demo model: %s (%d features -> %d classes)\n",
			net.Topology(), m.InSize(), m.Classes())
	}
	if reg.Len() == 0 {
		fmt.Fprintln(os.Stderr, "rapidnn-serve: nothing to serve; pass -model path/to/model.rapidnn or -demo MNIST")
		os.Exit(1)
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(1 << 16)
	}
	srv := serve.NewServer(reg, serve.Config{
		Batcher: serve.BatcherConfig{
			MaxBatch:   *maxBatch,
			MaxDelay:   *maxDelay,
			QueueDepth: *queue,
		},
		RequestTimeout: *timeout,
		CanaryInterval: *canaryInterval,
		Trace:          tracer,
		Replica:        *replicaID,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		TenantMax:      *tenantMax,
		Chaos:          eng,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("listening on %s (max-batch %d, max-delay %v, queue %d)\n",
		ln.Addr(), *maxBatch, *maxDelay, *queue)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fail(err)
		}
	}
	if *register != "" {
		if err := registerWith(*register, ln.Addr()); err != nil {
			fail(fmt.Errorf("registering with %s: %w", *register, err))
		}
		fmt.Printf("registered with router %s\n", *register)
	}

	httpSrv := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %v, draining\n", s)
		// Refuse new work and complete every admitted request, then let the
		// HTTP layer finish writing the in-flight responses.
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fail(err)
		}
		// Every lane has drained: the registry and tracer are quiescent, so
		// the snapshots are complete and consistent.
		if *metricsOut != "" {
			if err := writeFileWith(*metricsOut, srv.Obs().WritePrometheus); err != nil {
				fail(err)
			}
			fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
		}
		if tracer != nil {
			if err := writeFileWith(*traceOut, tracer.WriteChromeTrace); err != nil {
				fail(err)
			}
			fmt.Printf("wrote trace (%d spans, %d dropped) to %s\n", tracer.Len(), tracer.Dropped(), *traceOut)
		}
		fmt.Println("drained cleanly")
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}
}
