package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildSimBinary(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "rapidnn-sim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// The -faults flag family validates its inputs before paying for training.
func TestSimCLIFaultFlagValidation(t *testing.T) {
	bin := buildSimBinary(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-faults", "-fault-rates", "banana"}, "bad -fault-rates"},
		{[]string{"-faults", "-fault-rates", "1.5"}, "bad -fault-rates"},
		{[]string{"-faults", "-fault-model", "gamma-ray"}, "unknown fault model"},
		{[]string{"-faults", "-protection", "prayer"}, "unknown protection"},
		{[]string{"-faults", "-fault-seeds", "0"}, "-fault-seeds"},
	}
	for _, c := range cases {
		out, err := exec.Command(bin, c.args...).CombinedOutput()
		if err == nil {
			t.Errorf("%v: expected a non-zero exit\n%s", c.args, out)
			continue
		}
		if !strings.Contains(string(out), c.want) {
			t.Errorf("%v: output missing %q:\n%s", c.args, c.want, out)
		}
	}
}

// The observability exports: a plain run with -metrics and -trace-out must
// write a Prometheus gauge file and a Chrome stage trace.
func TestSimCLIObservabilityExports(t *testing.T) {
	bin := buildSimBinary(t)
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.prom")
	trace := filepath.Join(dir, "t.json")
	out, err := exec.Command(bin, "-net", "MNIST",
		"-metrics", metrics, "-trace-out", trace).CombinedOutput()
	if err != nil {
		t.Fatalf("rapidnn-sim: %v\n%s", err, out)
	}
	m, err := os.ReadFile(metrics)
	if err != nil || !strings.Contains(string(m), "rapidnn_sim_throughput_inferences_per_second") {
		t.Fatalf("metrics file missing throughput gauge: %v\n%s", err, m)
	}
	tr, err := os.ReadFile(trace)
	if err != nil || !strings.Contains(string(tr), `"simulate"`) {
		t.Fatalf("trace file missing simulate span: %v", err)
	}
}

// One real -faults run end to end: trains the quick-suite benchmark, lowers
// it once, and sweeps two rates over one seed with protection on.
func TestSimCLIFaultStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	bin := buildSimBinary(t)
	out, err := exec.Command(bin, "-faults",
		"-fault-rates", "0,0.2", "-fault-seeds", "1",
		"-protection", "parity+spare").CombinedOutput()
	if err != nil {
		t.Fatalf("rapidnn-sim -faults: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"stuck faults", "protection parity+spare", "error min"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
