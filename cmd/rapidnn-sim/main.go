// Command rapidnn-sim maps a workload onto the simulated RAPIDNN
// accelerator and prints its execution report: latency, pipelined
// throughput, energy, per-block breakdown, RNA occupancy and the §5.5
// efficiency metrics. Workloads are the six benchmark topologies at paper
// scale, or the real-dimension ImageNet architectures (AlexNet, VGGNet,
// GoogLeNet, ResNet).
//
// Usage:
//
//	rapidnn-sim [-net MNIST] [-w 64] [-u 64] [-chips 1] [-share 0]
//	rapidnn-sim -net MNIST -sweep 4,16,64 [-workers N]
//	rapidnn-sim -faults [-fault-rates 0,0.01,0.05] [-fault-model stuck]
//	            [-protection parity+spare] [-spare-rows 64] [-fault-seeds 3]
//	rapidnn-sim [-cpuprofile cpu.out] [-memprofile mem.out] ...
//
// The -faults mode runs the hardware-in-the-loop reliability study instead
// of the performance simulation: a small trained benchmark is lowered once,
// and seeded fault overlays are injected and cleared per sweep point, so the
// whole grid shares one composed network.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/accel"
	"repro/internal/accel/compile"
	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/rna"
)

// exportObs writes the run's metrics registry and/or stage trace to the
// -metrics / -trace-out files. Error paths that os.Exit lose them, same as
// the profiles.
func exportObs(metricsOut string, reg *obs.Registry, traceOut string, tr *obs.Tracer) {
	write := func(path string, fn func(f *os.File) error) {
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-sim: %v\n", err)
			os.Exit(1)
		}
	}
	if metricsOut != "" {
		write(metricsOut, func(f *os.File) error { return reg.WritePrometheus(f) })
		fmt.Printf("wrote metrics to %s\n", metricsOut)
	}
	if traceOut != "" {
		write(traceOut, func(f *os.File) error { return tr.WriteChromeTrace(f) })
		fmt.Printf("wrote stage trace (%d spans) to %s\n", tr.Len(), traceOut)
	}
}

func main() {
	name := flag.String("net", "MNIST", "workload (MNIST, ISOLET, HAR, CIFAR-10, CIFAR-100, ImageNet, AlexNet, VGGNet, GoogLeNet, ResNet)")
	w := flag.Int("w", 64, "weight codebook size")
	u := flag.Int("u", 64, "input codebook size")
	chips := flag.Int("chips", 1, "number of RAPIDNN chips")
	share := flag.Float64("share", 0, "RNA sharing fraction")
	mode := flag.String("mode", "", "run the compilation pass with this objective (latency or throughput) and report the optimized schedule")
	capacityChips := flag.String("capacity-chips", "1,2,4,8", "chip counts for the -mode capacity estimate")
	targetIPS := flag.Float64("target-ips", 0, "aggregate inference rate to size the fleet for in the -mode capacity estimate")
	stream := flag.Int("stream", 0, "also event-simulate this many pipelined inputs")
	trace := flag.String("trace", "", "write the event simulation as a Chrome trace to this file")
	sweep := flag.String("sweep", "", "comma-separated codebook sizes: simulate every (w,u) pair in parallel instead of a single run")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	faults := flag.Bool("faults", false, "run the seeded fault-injection accuracy study instead of the performance simulation")
	faultRates := flag.String("fault-rates", "0,0.001,0.01,0.05,0.2", "comma-separated fault rates for -faults")
	faultModel := flag.String("fault-model", "stuck", "fault model for -faults: stuck, transient, camrow, mixed")
	protection := flag.String("protection", "none", "protection for -faults: none, parity, spare, tmr, all, or a + combination")
	spareRows := flag.Int("spare-rows", 64, "per-crossbar spare-row budget when spare protection is enabled")
	faultSeeds := flag.Int("fault-seeds", 3, "independent fault-map seeds averaged per rate")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	metricsOut := flag.String("metrics", "", "write the run's report metrics in Prometheus text format to this file")
	traceOut := flag.String("trace-out", "", "record run stage spans (composition, simulation, sweeps) and write a Chrome trace to this file")
	flag.Parse()
	bench.Workers = *workers

	oreg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(1 << 16)
		// The harness globals thread the tracer through composer runs and
		// hardware lowerings without plumbing every call site.
		bench.Trace = tracer
	}
	if *metricsOut != "" || *traceOut != "" {
		// -metrics alone must still populate the registry (the -faults
		// path's counters flow through bench.Obs), same as rapidnn-bench.
		bench.Obs = oreg
	}
	defer exportObs(*metricsOut, oreg, *traceOut, tracer)

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-sim: %v\n", err)
		os.Exit(1)
	}
	// Runs on every normal return, including the -faults and -sweep paths;
	// error paths that os.Exit lose the profiles, which is acceptable.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-sim: %v\n", err)
			os.Exit(1)
		}
	}()

	if *faults {
		sp := tracer.Start("sim", "fault_study")
		runFaultStudy(*faultRates, *faultModel, *protection, *spareRows, *faultSeeds)
		sp.End()
		return
	}

	var hb *bench.HWBench
	for _, b := range bench.HardwareBenchmarks(*w, *u) {
		if strings.EqualFold(b.Name, *name) {
			hb = b
			break
		}
	}
	if hb == nil {
		if b, err := bench.PaperScaleNet(*name, *w, *u); err == nil {
			hb = b
		}
	}
	if hb == nil {
		valid := append(dataset.Names(), bench.PaperScaleNames()...)
		fmt.Fprintf(os.Stderr, "rapidnn-sim: unknown workload %q (valid: %s)\n",
			*name, strings.Join(valid, ", "))
		os.Exit(1)
	}

	cfg := accel.DefaultConfig()
	cfg.Chips = *chips
	cfg.ShareFraction = *share

	if *sweep != "" {
		var sizes []int
		for _, s := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "rapidnn-sim: bad -sweep size %q\n", s)
				os.Exit(1)
			}
			sizes = append(sizes, n)
		}
		type cell struct {
			w, u int
			rep  *accel.Report
		}
		sweepSp := tracer.Start("sim", "sweep")
		cells, err := bench.ParallelSweep(bench.SweepGrid([]*bench.HWBench{hb}, sizes, sizes),
			func(p bench.SweepPoint) (cell, error) {
				sp := tracer.Start("sim", "simulate:"+strconv.Itoa(p.W)+"x"+strconv.Itoa(p.U))
				rep, err := accel.Simulate(p.Bench.Name, p.Bench.Replan(p.W, p.U), p.Bench.MACs, cfg)
				sp.End()
				if err != nil {
					return cell{}, err
				}
				return cell{w: p.W, u: p.U, rep: rep}, nil
			})
		sweepSp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-sim: sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("workload: %s  codebook sweep %v x %v\n\n", hb.Name, sizes, sizes)
		fmt.Printf("%4s %4s %14s %14s %12s %10s\n", "w", "u", "throughput", "energy/input", "EDP", "memory")
		for _, c := range cells {
			fmt.Printf("%4d %4d %11.0f/s %11.3f uJ %12.3g %7.1f MB\n",
				c.w, c.u, c.rep.ThroughputIPS, c.rep.EnergyPerInputJ*1e6,
				c.rep.EDP(), float64(c.rep.MemoryBytes)/1e6)
		}
		return
	}

	simSp := tracer.Start("sim", "simulate")
	rep, err := accel.Simulate(hb.Name, hb.Plans, hb.MACs, cfg)
	simSp.End()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-sim: %v\n", err)
		os.Exit(1)
	}
	// Register the report's headline numbers so -metrics captures the run in
	// scrape-friendly form alongside the human-readable print-out.
	wl := obs.L("workload", rep.Network)
	oreg.Gauge("rapidnn_sim_throughput_inferences_per_second", "Pipelined simulated throughput.", wl).Set(rep.ThroughputIPS)
	oreg.Gauge("rapidnn_sim_latency_seconds", "Single-inference simulated latency.", wl).Set(rep.LatencySeconds)
	oreg.Gauge("rapidnn_sim_energy_per_input_joules", "Simulated energy per inference.", wl).Set(rep.EnergyPerInputJ)
	oreg.Gauge("rapidnn_sim_area_mm2", "Accelerator area.", wl).Set(rep.AreaMM2)
	oreg.Gauge("rapidnn_sim_peak_power_watts", "Simulated peak power.", wl).Set(rep.PeakPowerW)
	oreg.Gauge("rapidnn_sim_table_memory_bytes", "Codebook and table memory footprint.", wl).Set(float64(rep.MemoryBytes))
	oreg.Gauge("rapidnn_sim_rna_blocks_required", "RNA blocks the workload needs.", wl).Set(float64(rep.RNAsRequired))
	oreg.Gauge("rapidnn_sim_edp_joule_seconds", "Energy-delay product.", wl).Set(rep.EDP())

	fmt.Printf("workload: %s  (%.2f GMACs/inference)\n", rep.Network, float64(rep.MACs)/1e9)
	fmt.Printf("deployment: %d chip(s), w=%d u=%d, sharing %.0f%%\n\n", rep.Chips, *w, *u, 100**share)
	fmt.Printf("RNA blocks:   %d required / %d available (multiplex %.2fx)\n",
		rep.RNAsRequired, rep.RNAsAvailable, rep.Multiplex)
	fmt.Printf("latency:      %d cycles = %.3f us\n", rep.LatencyCycles, rep.LatencySeconds*1e6)
	fmt.Printf("throughput:   %.0f inferences/s (pipeline interval %d cycles)\n",
		rep.ThroughputIPS, rep.PipelineCycles)
	fmt.Printf("energy/input: %.3f uJ (reconfiguration %.3f uJ)\n",
		rep.EnergyPerInputJ*1e6, rep.ReconfigEnergyJ*1e6)
	fmt.Printf("area:         %.1f mm^2 (utilized %.1f mm^2)\n", rep.AreaMM2, rep.UtilizedAreaMM2)
	fmt.Printf("peak power:   %.1f W\n", rep.PeakPowerW)
	fmt.Printf("table memory: %.1f MB\n", float64(rep.MemoryBytes)/1e6)
	fmt.Printf("efficiency:   %.0f GOPS, %.1f GOPS/mm^2, %.1f GOPS/W, EDP %.3g Js\n\n",
		rep.GOPS, rep.GOPSPerMM2, rep.GOPSPerW, rep.EDP())

	tot := rep.Breakdown.Total()
	fmt.Println("energy breakdown:")
	for _, b := range rna.Blocks() {
		if rep.Breakdown[b].EnergyJ == 0 {
			continue
		}
		fmt.Printf("  %-15s %5.1f%%\n", b, 100*rep.Breakdown[b].EnergyJ/tot.EnergyJ)
	}

	fmt.Println("\nper-layer stages:")
	for _, l := range rep.Layers {
		fmt.Printf("  %-6s %-5s neurons=%-8d blocks=%-8d cycles=%d\n",
			l.Name, l.Kind, l.Neurons, l.RNABlocks, l.Cycles)
	}

	if *stream > 0 {
		pipe, err := accel.SimulatePipeline(hb.Plans, *stream, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nstreaming %d inputs: fill %d cycles, steady interval %d cycles, makespan %d cycles\n",
			*stream, pipe.FirstLatency, pipe.SteadyInterval, pipe.MakespanCycles)
		if *trace != "" {
			f, err := os.Create(*trace)
			if err == nil {
				err = pipe.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rapidnn-sim: trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace to %s\n", *trace)
		}
	}

	if placement, err := accel.Place(hb.Plans, cfg); err == nil {
		fmt.Printf("\ntile placement (%d tiles used):\n", placement.TilesUsed)
		for _, lp := range placement.Layers {
			fmt.Printf("  %-6s tiles %d..%d\n", lp.Name, lp.FirstTile, lp.FirstTile+lp.Tiles-1)
		}
		fmt.Printf("  activation traffic: %d intra-tile bits, %d inter-tile bits, %.2f nJ/input\n",
			placement.IntraTileBits, placement.InterTileBits, placement.BufferEnergyJ*1e9)
	} else {
		// The multiplexed regime is a legitimate, reportable state — the
		// placement error says why no static layout exists, never swallow it.
		fmt.Printf("\nno static tile placement: %v\n", err)
	}

	if *mode != "" {
		runCompilePass(hb, cfg, *mode, *capacityChips, *targetIPS, oreg, tracer)
	}
}

// runCompilePass executes the -mode compilation pass and prints the
// optimized schedule: placement, replication vector, initiation interval and
// energy deltas versus the uncompiled mapping, plus the schedule-driven
// capacity estimate.
func runCompilePass(hb *bench.HWBench, cfg accel.Config, modeStr, capacityCSV string, targetIPS float64, oreg *obs.Registry, tracer *obs.Tracer) {
	m, err := compile.ParseMode(modeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-sim: %v\n", err)
		os.Exit(1)
	}
	var chipCounts []int
	for _, s := range strings.Split(capacityCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "rapidnn-sim: bad -capacity-chips entry %q\n", s)
			os.Exit(1)
		}
		chipCounts = append(chipCounts, n)
	}

	sp := tracer.Start("sim", "compile:"+modeStr)
	sched, err := compile.Compile(hb.Name, hb.Plans, cfg, compile.Options{Mode: m})
	sp.End()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-sim: compile: %v\n", err)
		os.Exit(1)
	}

	c, b := sched.Compiled, sched.Baseline
	fmt.Printf("\ncompilation pass (%s objective):\n", sched.Mode)
	fmt.Printf("  II:          %d -> %d cycles (throughput %.0f -> %.0f inferences/s)\n",
		b.II, c.II, b.ThroughputIPS, c.ThroughputIPS)
	fmt.Printf("  latency:     %d -> %d cycles\n", b.LatencyCycles, c.LatencyCycles)
	deltaPct := 0.0
	if b.EnergyPerInputJ > 0 {
		deltaPct = 100 * (c.EnergyPerInputJ - b.EnergyPerInputJ) / b.EnergyPerInputJ
	}
	fmt.Printf("  energy:      %.3f -> %.3f uJ/input (%+.1f%%)\n",
		b.EnergyPerInputJ*1e6, c.EnergyPerInputJ*1e6, deltaPct)
	fmt.Printf("  blocks:      %d -> %d (multiplex %.2fx -> %.2fx)\n",
		b.BlocksRequired, c.BlocksRequired, b.Multiplex, c.Multiplex)
	switch {
	case m == compile.Throughput && c.II < b.II:
		fmt.Printf("  improvement: II %d -> %d cycles (%.2fx throughput)\n",
			b.II, c.II, float64(b.II)/float64(c.II))
	case m == compile.Latency && c.LatencyCycles < b.LatencyCycles:
		fmt.Printf("  improvement: latency %d -> %d cycles\n", b.LatencyCycles, c.LatencyCycles)
	default:
		fmt.Printf("  improvement: none — the uncompiled mapping is already optimal under the %s objective\n", sched.Mode)
	}
	fmt.Printf("  replication vector: %v\n", sched.ReplicaVector())
	fmt.Println("  stages:")
	for _, st := range sched.Stages {
		loc := "multiplexed (no static placement)"
		if st.FirstTile >= 0 {
			loc = fmt.Sprintf("tiles %d..%d", st.FirstTile, st.FirstTile+st.Tiles-1)
		}
		shared := ""
		if st.Shared {
			shared = " shared"
		}
		fmt.Printf("    %-6s %-5s R=%-2d blocks=%-6d sub-stage %d cycles  %s%s\n",
			st.Name, st.Kind, st.Replicas, st.Blocks, st.SubCycles, loc, shared)
	}
	if sched.PlacementErr != "" {
		fmt.Printf("  placement: %s\n", sched.PlacementErr)
	}
	fmt.Printf("  event-sim check: steady interval %d cycles, first latency %d cycles (matches analytic model)\n",
		sched.EventSteadyInterval, sched.EventFirstLatency)

	wl := obs.L("workload", hb.Name)
	oreg.Gauge("rapidnn_sim_compiled_ii_cycles", "Compiled schedule initiation interval.", wl, obs.L("mode", sched.Mode.String())).Set(float64(c.II))
	oreg.Gauge("rapidnn_sim_compiled_throughput_inferences_per_second", "Compiled schedule throughput.", wl, obs.L("mode", sched.Mode.String())).Set(c.ThroughputIPS)

	capSp := tracer.Start("sim", "capacity")
	plan, err := bench.FleetSize(hb, cfg, compile.Options{Mode: m}, chipCounts, targetIPS)
	capSp.End()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-sim: capacity: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%s", plan)
}

// runFaultStudy executes the -faults mode: one small trained benchmark,
// lowered once, swept over the requested fault rates with every fault map
// injected as a revertible overlay.
func runFaultStudy(ratesCSV, model, protection string, spareRows, seeds int) {
	var rates []float64
	for _, s := range strings.Split(ratesCSV, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r < 0 || r > 1 {
			fmt.Fprintf(os.Stderr, "rapidnn-sim: bad -fault-rates entry %q (want numbers in [0,1])\n", s)
			os.Exit(1)
		}
		rates = append(rates, r)
	}
	if seeds < 1 {
		fmt.Fprintln(os.Stderr, "rapidnn-sim: -fault-seeds must be at least 1")
		os.Exit(1)
	}
	prot, err := fault.ParseProtection(protection, spareRows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-sim: %v\n", err)
		os.Exit(1)
	}
	// Validate the model name before paying for training.
	if _, err := fault.ForModel(model, 0, 0); err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("training the reliability-study benchmark (quick suite)...")
	r, err := bench.FaultStudy(bench.NewSuite(true), bench.FaultStudyConfig{
		Rates:      rates,
		Seeds:      bench.DefaultFaultSeeds(seeds),
		Model:      model,
		Protection: prot,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-sim: faults: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(r)
}
