// Command rapidnn-infer loads a composed model saved by rapidnn-compose,
// evaluates its reinterpreted accuracy on the named benchmark dataset, and
// optionally validates a number of samples through the functional hardware
// path — parallel counting, NOR-decomposed in-memory addition and NDCAM
// searches — reporting the hardware/software agreement and the substrate
// activity.
//
// It also bulk-scores feature files offline: -score streams a CSV of
// feature rows (one input per line) through the reinterpreted model in
// fixed-size batches — memory stays O(batch) however large the file — and
// writes one predicted class per line.
//
// Usage:
//
//	rapidnn-infer -model model.rapidnn -dataset MNIST [-hw 20] [-workers N]
//	rapidnn-infer -model model.rapidnn -score features.csv [-out preds.txt] [-batch 256] [-header]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/bench"
	"repro/internal/composer"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/rna"
	"repro/internal/tensor"
)

func main() {
	modelPath := flag.String("model", "", "path to a model saved by rapidnn-compose -save")
	dsName := flag.String("dataset", "MNIST", "benchmark dataset to evaluate on")
	hwSamples := flag.Int("hw", 0, "validate this many samples through the functional hardware path")
	workers := flag.Int("workers", 0, "hardware-validation worker goroutines (0 = GOMAXPROCS)")
	scorePath := flag.String("score", "", "bulk-score this CSV of feature rows instead of evaluating a dataset")
	outPath := flag.String("out", "", "write bulk-scoring predictions here (default stdout)")
	batch := flag.Int("batch", 256, "bulk-scoring batch size")
	header := flag.Bool("header", false, "the -score file starts with a header line")
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "rapidnn-infer: -model is required")
		os.Exit(1)
	}

	// RAPIDNN2 artifacts mmap in with no decode pass; gob artifacts decode.
	c, err := composer.LoadFile(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	how := "decoded"
	if c.Mapped() {
		how = "mapped"
	}
	fmt.Printf("loaded %s (%s): %s\n", *modelPath, how, c.Net.Topology())
	fmt.Printf("recorded quality: baseline %.2f%%, reinterpreted %.2f%%\n",
		100*c.BaselineError, 100*c.FinalError)

	if *scorePath != "" {
		if err := bulkScore(c, *scorePath, *outPath, *batch, *header); err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-infer: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ds, err := dataset.ByName(*dsName, dataset.Small)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: %v\n", err)
		os.Exit(1)
	}
	if ds.InSize() != c.Net.InSize() {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: model wants %d features, %s has %d\n",
			c.Net.InSize(), ds.Name, ds.InSize())
		os.Exit(1)
	}

	re := composer.NewReinterpreted(c.Net, c.Plans)
	swErr := re.ErrorRate(ds.TestX, ds.TestY, 64)
	fmt.Printf("software reinterpreted error on %s test split: %.2f%%\n", ds.Name, 100*swErr)

	if *hwSamples <= 0 {
		return
	}
	n := *hwSamples
	if n > ds.TestX.Dim(0) {
		n = ds.TestX.Dim(0)
	}
	hw, err := rna.BuildHardwareNetwork(re.Net(), c.Plans, device.Default())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: hardware lowering: %v\n", err)
		os.Exit(1)
	}
	in := ds.InSize()
	hw.Workers = *workers
	sample := tensor.FromSlice(ds.TestX.Data()[:n*in], n, in)
	hwPreds, err := hw.InferBatch(sample)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: %v\n", err)
		os.Exit(1)
	}
	swPreds := re.Predict(sample)
	agree, correct := 0, 0
	for i := 0; i < n; i++ {
		if hwPreds[i] == swPreds[i] {
			agree++
		}
		if hwPreds[i] == ds.TestY[i] {
			correct++
		}
	}
	fmt.Printf("\nhardware-in-the-loop on %d samples:\n", n)
	fmt.Printf("  hardware/software agreement: %d/%d\n", agree, n)
	fmt.Printf("  hardware accuracy:           %d/%d\n", correct, n)
	fmt.Printf("  substrate activity: %d NOR cycles, %d operand writes, %.2f nJ in the crossbars\n",
		hw.Stats.NORs, hw.Stats.Writes, hw.Stats.EnergyJ*1e9)
}

// bulkScore streams the feature file through the reinterpreted model in
// fixed-size batches and writes one predicted class per input line.
func bulkScore(c *composer.Composed, scorePath, outPath string, batch int, header bool) error {
	in, err := os.Open(scorePath)
	if err != nil {
		return err
	}
	defer in.Close()
	var out *os.File
	if outPath != "" {
		if out, err = os.Create(outPath); err != nil {
			return err
		}
	} else {
		out = os.Stdout
	}
	w := bufio.NewWriterSize(out, 1<<16)
	re := composer.NewReinterpreted(c.Net, c.Plans)
	features := c.Net.InSize()
	rr, err := bench.NewRecordReader(in, features, header)
	if err != nil {
		return err
	}
	n, err := bench.BulkScore(rr, features, batch,
		func(x *tensor.Tensor) ([]int, error) { return re.Predict(x), nil },
		func(base int, preds []int) error {
			for _, p := range preds {
				if _, err := w.WriteString(strconv.Itoa(p)); err != nil {
					return err
				}
				if err := w.WriteByte('\n'); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if outPath != "" {
		if err := out.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "scored %d rows (%d features each) in batches of %d\n", n, features, batch)
	return nil
}
