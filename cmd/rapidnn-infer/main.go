// Command rapidnn-infer loads a composed model saved by rapidnn-compose,
// evaluates its reinterpreted accuracy on the named benchmark dataset, and
// optionally validates a number of samples through the functional hardware
// path — parallel counting, NOR-decomposed in-memory addition and NDCAM
// searches — reporting the hardware/software agreement and the substrate
// activity.
//
// Usage:
//
//	rapidnn-infer -model model.rapidnn -dataset MNIST [-hw 20] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/composer"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/rna"
	"repro/internal/tensor"
)

func main() {
	modelPath := flag.String("model", "", "path to a model saved by rapidnn-compose -save")
	dsName := flag.String("dataset", "MNIST", "benchmark dataset to evaluate on")
	hwSamples := flag.Int("hw", 0, "validate this many samples through the functional hardware path")
	workers := flag.Int("workers", 0, "hardware-validation worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "rapidnn-infer: -model is required")
		os.Exit(1)
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: %v\n", err)
		os.Exit(1)
	}
	c, err := composer.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %s: %s\n", *modelPath, c.Net.Topology())
	fmt.Printf("recorded quality: baseline %.2f%%, reinterpreted %.2f%%\n",
		100*c.BaselineError, 100*c.FinalError)

	ds, err := dataset.ByName(*dsName, dataset.Small)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: %v\n", err)
		os.Exit(1)
	}
	if ds.InSize() != c.Net.InSize() {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: model wants %d features, %s has %d\n",
			c.Net.InSize(), ds.Name, ds.InSize())
		os.Exit(1)
	}

	re := composer.NewReinterpreted(c.Net, c.Plans)
	swErr := re.ErrorRate(ds.TestX, ds.TestY, 64)
	fmt.Printf("software reinterpreted error on %s test split: %.2f%%\n", ds.Name, 100*swErr)

	if *hwSamples <= 0 {
		return
	}
	n := *hwSamples
	if n > ds.TestX.Dim(0) {
		n = ds.TestX.Dim(0)
	}
	hw, err := rna.BuildHardwareNetwork(re.Net(), c.Plans, device.Default())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: hardware lowering: %v\n", err)
		os.Exit(1)
	}
	in := ds.InSize()
	hw.Workers = *workers
	batch := tensor.FromSlice(ds.TestX.Data()[:n*in], n, in)
	hwPreds, err := hw.InferBatch(batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-infer: %v\n", err)
		os.Exit(1)
	}
	swPreds := re.Predict(batch)
	agree, correct := 0, 0
	for i := 0; i < n; i++ {
		if hwPreds[i] == swPreds[i] {
			agree++
		}
		if hwPreds[i] == ds.TestY[i] {
			correct++
		}
	}
	fmt.Printf("\nhardware-in-the-loop on %d samples:\n", n)
	fmt.Printf("  hardware/software agreement: %d/%d\n", agree, n)
	fmt.Printf("  hardware accuracy:           %d/%d\n", correct, n)
	fmt.Printf("  substrate activity: %d NOR cycles, %d operand writes, %.2f nJ in the crossbars\n",
		hw.Stats.NORs, hw.Stats.Writes, hw.Stats.EnergyJ*1e9)
}
