// Command rapidnn-benchstat is the benchmark-regression harness around the
// hot-path microbenchmarks: it parses `go test -bench -benchmem` output,
// merges a before/after pair into the committed baseline JSON, and checks a
// fresh run against that baseline so a performance regression fails loudly
// instead of rotting silently.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | rapidnn-benchstat -json
//	rapidnn-benchstat -before before.txt -after after.txt -out BENCH_PR4.json
//	go test -run '^$' -bench . -benchmem ./... | rapidnn-benchstat -check BENCH_PR4.json
//
// The check compares against the baseline's "after" numbers: ns/op may
// drift up to -tolerance (wall time is noisy), while allocs/op gets only a
// token slack — the zero-allocation guarantees are the point of the
// baseline, and they are deterministic.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measured steady-state cost.
type Metrics struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Entry pairs a benchmark's before/after measurements in the baseline file.
// Before may be absent for benchmarks that have no pre-change counterpart.
type Entry struct {
	Name   string   `json:"name"`
	Before *Metrics `json:"before,omitempty"`
	After  Metrics  `json:"after"`
	// Speedup and AllocReduction summarize before/after; 0 when no before.
	Speedup        float64 `json:"ns_speedup,omitempty"`
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
}

// Baseline is the committed BENCH_PR4.json layout.
type Baseline struct {
	Note       string  `json:"note"`
	Benchmarks []Entry `json:"benchmarks"`
}

// gomaxprocsSuffix strips the trailing "-N" processor-count suffix the
// testing package appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench -benchmem` output and returns the metrics
// keyed by benchmark name (GOMAXPROCS suffix stripped, "Benchmark" prefix
// kept off). Repeated names keep the last occurrence.
func parseBench(r io.Reader) (map[string]Metrics, []string, error) {
	out := map[string]Metrics{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := Metrics{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		prev, seen := out[name]
		if !seen {
			order = append(order, name)
			out[name] = m
		} else if m.NsPerOp < prev.NsPerOp {
			// Repeated samples of one benchmark (go test -count N) keep the
			// fastest run: scheduler and thermal noise only ever add time, so
			// min ns/op is the robust "did the code get slower" statistic.
			out[name] = m
		}
	}
	return out, order, sc.Err()
}

func parseBenchFile(path string) (map[string]Metrics, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rapidnn-benchstat: %v\n", err)
	os.Exit(1)
}

func main() {
	jsonOnly := flag.Bool("json", false, "parse go test -bench output on stdin and print it as JSON")
	before := flag.String("before", "", "bench output captured before the change")
	after := flag.String("after", "", "bench output captured after the change")
	out := flag.String("out", "", "write the merged baseline JSON here (default stdout)")
	note := flag.String("note", "", "free-form provenance note stored in the baseline")
	check := flag.String("check", "", "baseline JSON to compare the bench output on stdin against")
	tolerance := flag.Float64("tolerance", 1.5, "allowed ns/op ratio over the baseline in -check mode")
	flag.Parse()

	switch {
	case *jsonOnly:
		cur, order, err := parseBench(os.Stdin)
		if err != nil {
			fatal(err)
		}
		var entries []Entry
		for _, name := range order {
			entries = append(entries, Entry{Name: name, After: cur[name]})
		}
		emit(Baseline{Benchmarks: entries}, "")
	case *check != "":
		runCheck(*check, *tolerance)
	case *after != "":
		merge(*before, *after, *out, *note)
	default:
		fmt.Fprintln(os.Stderr, "rapidnn-benchstat: need -json, -check FILE, or -before/-after FILES (see -h)")
		os.Exit(2)
	}
}

// merge builds the committed baseline from a before/after capture pair.
func merge(beforePath, afterPath, outPath, note string) {
	aft, order, err := parseBenchFile(afterPath)
	if err != nil {
		fatal(err)
	}
	bef := map[string]Metrics{}
	if beforePath != "" {
		if bef, _, err = parseBenchFile(beforePath); err != nil {
			fatal(err)
		}
	}
	var entries []Entry
	for _, name := range order {
		e := Entry{Name: name, After: aft[name]}
		if b, ok := bef[name]; ok {
			bCopy := b
			e.Before = &bCopy
			if e.After.NsPerOp > 0 {
				e.Speedup = round2(b.NsPerOp / e.After.NsPerOp)
			}
			switch {
			case e.After.AllocsPerOp > 0:
				e.AllocReduction = round2(b.AllocsPerOp / e.After.AllocsPerOp)
			case b.AllocsPerOp > 0:
				// Down to zero: the reduction is unbounded; report the count
				// that vanished instead of an infinity JSON cannot carry.
				e.AllocReduction = b.AllocsPerOp
			}
		}
		entries = append(entries, e)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	emit(Baseline{Note: note, Benchmarks: entries}, outPath)
}

// runCheck compares the bench output on stdin against a committed baseline's
// "after" numbers and exits non-zero on any regression.
func runCheck(baselinePath string, tolerance float64) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", baselinePath, err))
	}
	cur, _, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	failed := 0
	checked := 0
	for _, e := range base.Benchmarks {
		got, ok := cur[e.Name]
		if !ok {
			continue // the run may exercise a subset of the baseline
		}
		checked++
		status := "ok"
		if e.After.NsPerOp > 0 && got.NsPerOp > e.After.NsPerOp*tolerance {
			status = fmt.Sprintf("FAIL: %.0f ns/op vs baseline %.0f (tolerance %.2fx)",
				got.NsPerOp, e.After.NsPerOp, tolerance)
		}
		// Allocation counts are deterministic modulo pool churn under memory
		// pressure; allow a token absolute slack, never a proportional one.
		if got.AllocsPerOp > e.After.AllocsPerOp+2 {
			status = fmt.Sprintf("FAIL: %.0f allocs/op vs baseline %.0f",
				got.AllocsPerOp, e.After.AllocsPerOp)
		}
		if strings.HasPrefix(status, "FAIL") {
			failed++
		}
		fmt.Printf("%-40s %12.0f ns/op %8.0f allocs/op   %s\n", e.Name, got.NsPerOp, got.AllocsPerOp, status)
	}
	if checked == 0 {
		fatal(fmt.Errorf("no benchmark on stdin matched the %d baseline entries", len(base.Benchmarks)))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d benchmarks regressed", failed, checked))
	}
	fmt.Printf("all %d benchmarks within tolerance\n", checked)
}

func emit(b Baseline, outPath string) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", outPath, len(b.Benchmarks))
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
