// Command rapidnn-router is the serving fleet's front door: it consistent-
// hashes (tenant, model) predict traffic across rapidnn-serve replicas,
// probes their health and queue depth, retries idempotent predicts on the
// next ring member when a replica dies mid-request, enforces fleet-wide
// per-tenant admission quotas, and — when started with -registry — drives
// canary-then-promote artifact rollouts over the live fleet.
//
// Usage:
//
//	rapidnn-router -replica http://127.0.0.1:8081 -replica http://127.0.0.1:8082
//	rapidnn-router -registry ./artifacts -replica ...   # enables /fleet/rollout
//
// Backends may also join later via POST /fleet/register {"url": "..."} (see
// rapidnn-serve -register).
//
//	curl -s localhost:8090/fleet/replicas
//	curl -s localhost:8090/v1/predict -H 'X-Tenant: team-a' -d '{"model":"m","inputs":[[...]]}'
//	curl -s localhost:8090/fleet/rollout -d '{"model":"m","version":"v2"}'
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/fleet/rollout"
)

// replicaFlags collects repeated -replica URLs.
type replicaFlags []string

func (r *replicaFlags) String() string { return fmt.Sprintf("%d replicas", len(*r)) }

func (r *replicaFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rapidnn-router: %v\n", err)
	os.Exit(1)
}

func main() {
	var replicas replicaFlags
	flag.Var(&replicas, "replica", "backend base URL to route to, e.g. http://127.0.0.1:8081 (repeatable)")
	addr := flag.String("addr", ":8090", "listen address (use 127.0.0.1:0 for a random port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	registryDir := flag.String("registry", "", "versioned artifact registry directory; enables POST /fleet/rollout")
	pollInterval := flag.Duration("poll-interval", 500*time.Millisecond, "replica health/queue-depth probe period")
	downAfter := flag.Int("down-after", 2, "consecutive failed probes before a replica is marked down")
	retries := flag.Int("retries", 2, "distinct replicas a predict may try along the ring walk")
	maxQueueDepth := flag.Float64("max-queue-depth", 0, "shed predicts to replicas whose scraped queue depth exceeds this (0 = disabled)")
	tenantRate := flag.Float64("tenant-rps", 0, "fleet-wide per-tenant admission quota in requests/second (0 = disabled)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant quota burst capacity (0 = 2x rate)")
	canaryFraction := flag.Float64("canary-fraction", 0.25, "fraction of the fleet a rollout canaries first (rounded up, min 1)")
	observeWindow := flag.Duration("observe-window", 2*time.Second, "how long canaries take live traffic before the error-rate gate")
	maxErrorDelta := flag.Float64("max-error-delta", 0.05, "rollback when canary error rate exceeds control replicas' by more than this")
	tenantMax := flag.Int("tenant-max", 0, "max tracked per-tenant quota buckets before LRU eviction (0 = default 4096)")
	retryBudget := flag.Float64("retry-budget", 0.2, "retry/hedge tokens earned per primary attempt (fraction of primary traffic retries may add)")
	retryBudgetCap := flag.Float64("retry-budget-cap", 10, "max banked retry/hedge tokens (burst failover allowance)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive 5xx/transport failures that open a replica's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open probe")
	hedgeAfter := flag.Duration("hedge-after", 0, "floor on the tail-hedging delay; 0 disables hedging entirely")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.9, "latency quantile of recent traffic that sets the hedge delay (>= -hedge-after)")
	chaosSpec := flag.String("chaos", "", "failpoint spec for the router's own points, e.g. 'router.forward=error@0.1' (enables POST /chaos)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic failpoint engine")
	flag.Parse()

	var eng *chaos.Engine
	if *chaosSpec != "" {
		rules, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fail(fmt.Errorf("-chaos: %w", err))
		}
		eng = chaos.New(*chaosSeed)
		if err := eng.Set(rules); err != nil {
			fail(fmt.Errorf("-chaos: %w", err))
		}
		fmt.Printf("chaos engine armed (seed %d): %s\n", *chaosSeed, *chaosSpec)
	}

	pool := fleet.NewPool(fleet.PoolConfig{
		PollInterval: *pollInterval,
		DownAfter:    *downAfter,
		Chaos:        eng,
	})
	for _, r := range replicas {
		info := pool.Add(r)
		fmt.Printf("replica %s: %s", info.URL, info.State)
		if info.LastError != "" {
			fmt.Printf(" (%s)", info.LastError)
		}
		fmt.Println()
	}
	pool.Start()
	defer pool.Stop()

	cfg := fleet.RouterConfig{
		Pool:            pool,
		Retries:         *retries,
		MaxQueueDepth:   *maxQueueDepth,
		TenantRate:      *tenantRate,
		TenantBurst:     *tenantBurst,
		TenantMax:       *tenantMax,
		RetryBudget:     *retryBudget,
		RetryBudgetCap:  *retryBudgetCap,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		HedgeAfter:      *hedgeAfter,
		HedgeQuantile:   *hedgeQuantile,
		Chaos:           eng,
	}
	if *registryDir != "" {
		reg, err := rollout.NewRegistry(*registryDir)
		if err != nil {
			fail(err)
		}
		cfg.Registry = reg
		cfg.Controller = rollout.NewController(reg, pool, rollout.Config{
			CanaryFraction:    *canaryFraction,
			ObserveWindow:     *observeWindow,
			MaxErrorRateDelta: *maxErrorDelta,
		})
		fmt.Printf("rollout registry: %s\n", reg.Dir())
	}
	router := fleet.NewRouter(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("routing on %s (%d replicas, retries %d)\n", ln.Addr(), len(replicas), *retries)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fail(err)
		}
	}

	httpSrv := &http.Server{Handler: router}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %v, shutting down\n", s)
		// The router holds no request state: in-flight proxies finish via
		// Close's connection drain, and the backends drain themselves.
		if err := httpSrv.Close(); err != nil {
			fail(err)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}
}
