package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/composer"
	"repro/internal/fleet/rollout"
	"repro/internal/nn"
)

// buildBinary compiles one of the repo's commands into a temp dir.
func buildBinary(t *testing.T, pkg, name string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), name)
	out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// proc is one spawned backend/router process under test.
type proc struct {
	cmd  *exec.Cmd
	log  *bytes.Buffer
	addr string
	dead bool
}

func (p *proc) kill() {
	if p == nil || p.dead {
		return
	}
	p.dead = true
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// start launches a binary with -addr 127.0.0.1:0 and waits for its
// addr-file.
func start(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	full := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)
	p := &proc{cmd: exec.Command(bin, full...), log: &bytes.Buffer{}}
	p.cmd.Stdout, p.cmd.Stderr = p.log, p.log
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.kill)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			p.addr = "http://" + string(b)
			return p
		}
		if time.Now().After(deadline) {
			p.kill()
			t.Fatalf("%s never wrote its address file\nlog:\n%s", bin, p.log.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// makeComposed builds a small valid model with embedded canaries.
func makeComposed(t *testing.T, seed int64) *composer.Composed {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork("cli").
		Add(nn.NewDense("fc1", 12, 10, nn.ReLU{}, rng)).
		Add(nn.NewDense("out", 10, 4, nn.Identity{}, rng))
	c := &composer.Composed{Net: net, Plans: composer.SyntheticPlans(net, 8, 8, 16)}
	c.SynthesizeCanaries(8, 1)
	return c
}

func writeFlat(t *testing.T, path string, c *composer.Composed) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFlat(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func predictVia(router, tenant string) (int, error) {
	body, _ := json.Marshal(map[string]any{
		"model": "m", "tenant": tenant, "inputs": [][]float32{make([]float32, 12)},
	})
	resp, err := http.Post(router+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// waitHealthy polls the router until n replicas are in the ring.
func waitHealthy(t *testing.T, router string, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(router + "/fleet/replicas")
		if err == nil {
			var got struct {
				Replicas []struct {
					State string `json:"state"`
				} `json:"replicas"`
			}
			json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			healthy := 0
			for _, r := range got.Replicas {
				if r.State == "healthy" {
					healthy++
				}
			}
			if healthy == n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never saw %d healthy replicas", n)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// The fleet survives a replica death under open-loop load: every response is
// either a success or an explicit shed (503/429) — never a raw 5xx error —
// and after the pool notices, the survivor owns the whole ring.
func TestRouterCLIFailoverUnderLoad(t *testing.T) {
	routerBin := buildBinary(t, ".", "rapidnn-router")
	serveBin := buildBinary(t, "repro/cmd/rapidnn-serve", "rapidnn-serve")
	dir := t.TempDir()
	artifact := filepath.Join(dir, "v1.rapidnn")
	writeFlat(t, artifact, makeComposed(t, 1))

	b1 := start(t, serveBin, "-model", "m="+artifact, "-max-delay", "1ms", "-replica-id", "r1")
	b2 := start(t, serveBin, "-model", "m="+artifact, "-max-delay", "1ms", "-replica-id", "r2")
	rt := start(t, routerBin,
		"-replica", b1.addr, "-replica", b2.addr,
		"-poll-interval", "50ms", "-down-after", "2", "-retries", "2")
	waitHealthy(t, rt.addr, 2)

	const total = 240
	const killAt = 60
	type result struct {
		code int
		err  error
	}
	results := make([]result, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		// Open loop at 5ms: arrivals do not wait for completions, so the
		// kill lands while requests are genuinely in flight.
		if wait := start.Add(time.Duration(i) * 5 * time.Millisecond).Sub(time.Now()); wait > 0 {
			time.Sleep(wait)
		}
		if i == killAt {
			b1.kill()
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, err := predictVia(rt.addr, fmt.Sprintf("tenant-%d", i%8))
			results[i] = result{code, err}
		}(i)
	}
	wg.Wait()

	ok, shed, transport := 0, 0, 0
	for i, r := range results {
		switch {
		case r.err != nil:
			// The router itself refused the connection — it should never
			// die, so any transport error fails the test.
			t.Fatalf("request %d: transport error through router: %v", i, r.err)
		case r.code == http.StatusOK:
			ok++
		case r.code == http.StatusServiceUnavailable || r.code == http.StatusTooManyRequests:
			shed++
		default:
			transport++
			t.Errorf("request %d: HTTP %d — a replica death leaked a raw error through the router", i, r.code)
		}
	}
	if ok == 0 {
		t.Fatalf("no request succeeded (%d shed)", shed)
	}
	// The tail of the run happens strictly after the kill; those requests
	// must have been re-ringed onto the survivor.
	tailOK := 0
	for _, r := range results[total-40:] {
		if r.code == http.StatusOK {
			tailOK++
		}
	}
	if tailOK == 0 {
		t.Fatalf("no successes after the replica death: ring never redistributed (ok=%d shed=%d)", ok, shed)
	}
	waitHealthy(t, rt.addr, 1)
	t.Logf("load: %d ok, %d shed, %d raw errors; %d/%d tail successes", ok, shed, transport, tailOK, 40)
}

// Canary-then-promote through the real binaries: a good version promotes
// fleet-wide; a corrupt and a stale version are both caught by the fleet
// canary gate and rolled back, leaving every replica serving the promoted
// version and still answering predicts.
func TestRouterCLICanaryRolloutGatesAndRollsBack(t *testing.T) {
	routerBin := buildBinary(t, ".", "rapidnn-router")
	serveBin := buildBinary(t, "repro/cmd/rapidnn-serve", "rapidnn-serve")

	regDir := t.TempDir()
	reg, err := rollout.NewRegistry(regDir)
	if err != nil {
		t.Fatal(err)
	}
	writeFlat(t, reg.Path("m", "v1"), makeComposed(t, 1))
	writeFlat(t, reg.Path("m", "v2"), makeComposed(t, 2))
	if err := reg.SetCurrent("m", "v1"); err != nil {
		t.Fatal(err)
	}

	// Router first, then the backends join via -register: the registration
	// path is part of what this test proves.
	rt := start(t, routerBin,
		"-registry", regDir,
		"-poll-interval", "50ms",
		"-canary-fraction", "0.5", "-observe-window", "100ms")
	start(t, serveBin, "-model", "m="+reg.Path("m", "v1"), "-max-delay", "1ms", "-register", rt.addr)
	start(t, serveBin, "-model", "m="+reg.Path("m", "v1"), "-max-delay", "1ms", "-register", rt.addr)
	waitHealthy(t, rt.addr, 2)

	rollTo := func(version string) (int, rollout.Status) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"model": "m", "version": version})
		resp, err := http.Post(rt.addr+"/fleet/rollout", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var st rollout.Status
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &st); err != nil {
				t.Fatalf("parsing rollout response: %v\n%s", err, data)
			}
		} else {
			var wrapped struct {
				Status rollout.Status `json:"status"`
			}
			if err := json.Unmarshal(data, &wrapped); err != nil {
				t.Fatalf("parsing rollout error response: %v\n%s", err, data)
			}
			st = wrapped.Status
		}
		return resp.StatusCode, st
	}

	fleetVersions := func() map[string]string {
		t.Helper()
		resp, err := http.Get(rt.addr + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var got struct {
			Models []struct {
				Name     string `json:"name"`
				Versions map[string]struct {
					Version string `json:"version"`
				} `json:"versions"`
			} `json:"models"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string)
		for _, m := range got.Models {
			if m.Name != "m" {
				continue
			}
			for url, v := range m.Versions {
				out[url] = v.Version
			}
		}
		return out
	}

	// waitVersions polls until every replica's cached version (refreshed by
	// the router's health probes) converges on want.
	waitVersions := func(want string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			vs := fleetVersions()
			converged := len(vs) == 2
			for _, v := range vs {
				converged = converged && v == want
			}
			if converged {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet never converged on %s: %v", want, vs)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// Good rollout: v2 promotes to the whole fleet.
	code, st := rollTo("v2")
	if code != http.StatusOK || st.Phase != rollout.PhaseDone {
		t.Fatalf("rollout of v2: HTTP %d, phase %s\nevents:\n%s", code, st.Phase, st.Events)
	}
	waitVersions("v2")

	// Corrupt rollout: v3 does not even load. The canary's all-or-nothing
	// scrub keeps it serving v2 and the controller reports failure.
	if err := os.WriteFile(reg.Path("m", "v3"), []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, st = rollTo("v3")
	if code != http.StatusConflict || st.Phase != rollout.PhaseFailed {
		t.Fatalf("rollout of corrupt v3: HTTP %d, phase %s, want 409/failed", code, st.Phase)
	}

	// Stale rollout: v4 loads cleanly but its golden predictions are wrong —
	// only the canary self-test can catch that, and it must trigger a
	// rollback to v2.
	stale := makeComposed(t, 3)
	for i := range stale.Canaries {
		stale.Canaries[i].Pred = (stale.Canaries[i].Pred + 1) % stale.Net.OutSize()
	}
	writeFlat(t, reg.Path("m", "v4"), stale)
	code, st = rollTo("v4")
	if code != http.StatusConflict || st.Phase != rollout.PhaseFailed {
		t.Fatalf("rollout of stale v4: HTTP %d, phase %s, want 409/failed", code, st.Phase)
	}

	waitVersions("v2")
	if cur, _ := reg.Current("m"); cur != "v2" {
		t.Fatalf("manifest current = %s, want v2", cur)
	}
	// No healthy replica was harmed: the whole fleet still answers.
	for i := 0; i < 8; i++ {
		code, err := predictVia(rt.addr, fmt.Sprintf("t%d", i))
		if err != nil || code != http.StatusOK {
			t.Fatalf("post-rollback predict %d: HTTP %d, %v", i, code, err)
		}
	}
}

// scrapeCounter sums every series of a metric from a /metrics endpoint;
// (0, false) when the metric is absent.
func scrapeCounter(t *testing.T, base, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sum, found := 0.0, false
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q: %v", line, err)
		}
		sum += v
		found = true
	}
	return sum, found
}

// chaosFires reads a replica's /chaos admin endpoint and sums fire counts.
func chaosFires(t *testing.T, base string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/chaos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Points []struct {
			Fires uint64 `json:"fires"`
		} `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	var fires uint64
	for _, p := range st.Points {
		fires += p.Fires
	}
	return fires
}

// The resilience layer under deterministic fault injection, end to end
// through the real binaries: one replica is slow (latency failpoint), one is
// flaky (injected 500s). Closed-loop load through the router must see only
// successes and explicit sheds — never a raw backend error — with a bounded
// tail (hedging routes around the slow replica) and bounded attempt
// amplification (the retry budget caps retries+hedges as a fraction of
// primaries). A request arriving with a deadline below the replicas' batch
// floor is rejected at admission, not enqueued.
func TestRouterChaosSmoke(t *testing.T) {
	routerBin := buildBinary(t, ".", "rapidnn-router")
	serveBin := buildBinary(t, "repro/cmd/rapidnn-serve", "rapidnn-serve")
	dir := t.TempDir()
	artifact := filepath.Join(dir, "v1.rapidnn")
	writeFlat(t, artifact, makeComposed(t, 1))

	slow := start(t, serveBin, "-model", "m="+artifact, "-max-delay", "4ms", "-replica-id", "slow",
		"-chaos", "serve.predict=latency:150ms@0.5", "-chaos-seed", "7")
	flaky := start(t, serveBin, "-model", "m="+artifact, "-max-delay", "4ms", "-replica-id", "flaky",
		"-chaos", "serve.predict=http:500@0.3", "-chaos-seed", "11")
	rt := start(t, routerBin,
		"-replica", slow.addr, "-replica", flaky.addr,
		"-poll-interval", "50ms", "-retries", "2",
		"-retry-budget", "0.2", "-retry-budget-cap", "3",
		"-hedge-after", "50ms")
	waitHealthy(t, rt.addr, 2)

	const total = 200
	counts := map[int]int{}
	lats := make([]time.Duration, 0, total)
	for i := 0; i < total; i++ {
		// Closed loop: each arrival waits for the previous completion, so
		// attempt amplification is purely retry/hedge-driven.
		t0 := time.Now()
		code, err := predictVia(rt.addr, fmt.Sprintf("tenant-%d", i%16))
		if err != nil {
			t.Fatalf("request %d: transport error through router: %v", i, err)
		}
		lats = append(lats, time.Since(t0))
		counts[code]++
	}
	for code, n := range counts {
		switch code {
		case http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
		default:
			t.Errorf("%d requests answered HTTP %d: injected faults leaked through the router", n, code)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded under chaos: %v", counts)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[int(0.99*float64(len(lats)-1))]
	if p99 > 1500*time.Millisecond {
		t.Errorf("p99 latency %v under chaos; hedging should bound the tail well below 1.5s", p99)
	}

	// Attempt amplification: every request launches one primary; retries and
	// hedges beyond that are funded by the budget (ratio 0.2, cap 3), so
	// total attempts <= total*(1+ratio) + cap.
	attempts, ok := scrapeCounter(t, rt.addr, "rapidnn_router_backend_attempts_total")
	if !ok {
		t.Fatal("router exports no rapidnn_router_backend_attempts_total")
	}
	if attempts < total {
		t.Errorf("only %.0f backend attempts for %d requests", attempts, total)
	}
	if max := float64(total)*1.2 + 3; attempts > max+0.5 {
		t.Errorf("attempt amplification: %.0f attempts for %d requests exceeds budget bound %.0f", attempts, total, max)
	}

	// Both failpoints actually fired: this run exercised real faults, not a
	// quiet fleet.
	if f := chaosFires(t, slow.addr); f == 0 {
		t.Error("slow replica's latency failpoint never fired")
	}
	if f := chaosFires(t, flaky.addr); f == 0 {
		t.Error("flaky replica's 500 failpoint never fired")
	}

	// Deadline probe: a 1ms budget is under the replicas' 4ms batch floor,
	// so it must be rejected at admission — shed with a 503, never batched
	// into the lane and never answered 200.
	probe503 := 0
	for i := 0; i < 10; i++ {
		body, _ := json.Marshal(map[string]any{
			"model": "m", "tenant": "probe", "inputs": [][]float32{make([]float32, 12)},
		})
		req, err := http.NewRequest(http.MethodPost, rt.addr+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Rapidnn-Deadline-Ms", "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("deadline probe %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("deadline probe %d answered 200: a 1ms budget beat a 4ms batch floor", i)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			probe503++
		}
	}
	if probe503 == 0 {
		t.Error("no deadline probe was shed with 503")
	}
	rejected := 0.0
	for _, replica := range []string{slow.addr, flaky.addr} {
		if v, ok := scrapeCounter(t, replica, "rapidnn_serve_deadline_rejected_total"); ok {
			rejected += v
		}
	}
	if rejected == 0 {
		t.Error("no replica counted a deadline admission rejection")
	}
	t.Logf("chaos smoke: statuses %v, p99 %v, %.0f attempts, %d/10 probes 503, %.0f admission rejections",
		counts, p99, attempts, probe503, rejected)
}
