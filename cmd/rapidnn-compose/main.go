// Command rapidnn-compose trains a benchmark model and runs the RAPIDNN DNN
// composer on it, printing the reinterpretation quality, the per-layer
// codebooks and table sizes, and the resulting accelerator memory footprint.
//
// Usage:
//
//	rapidnn-compose [-dataset MNIST] [-scale 0.25] [-epochs 8] [-w 64] [-u 64] [-iters 5]
//	rapidnn-compose -save model.rapidnn -format flat        # write a RAPIDNN2 artifact
//	rapidnn-compose -convert old.rapidnn -save new.rapidnn -format flat
//
// -format selects the artifact encoding for -save: "gob" is the RAPIDNN1
// stream, "flat" the zero-copy RAPIDNN2 layout that mmap-loads with no
// decode pass. -convert skips training entirely and transcodes an existing
// artifact (either format) into -save.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/composer"
	"repro/internal/dataset"
	"repro/internal/model"
)

func main() {
	name := flag.String("dataset", "MNIST", "benchmark dataset (MNIST, ISOLET, HAR, CIFAR-10, CIFAR-100, ImageNet)")
	scale := flag.Float64("scale", 0.25, "model width scale (1.0 = paper sizes)")
	epochs := flag.Int("epochs", 8, "baseline training epochs")
	w := flag.Int("w", 64, "weight codebook size")
	u := flag.Int("u", 64, "input codebook size")
	iters := flag.Int("iters", 5, "max composer iterations")
	share := flag.Float64("share", 0, "RNA sharing fraction (0..0.3)")
	savePath := flag.String("save", "", "write the composed model to this file")
	format := flag.String("format", "gob", "artifact format for -save: gob (RAPIDNN1) or flat (RAPIDNN2, zero-copy mmap)")
	convert := flag.String("convert", "", "transcode this existing artifact into -save (skips training)")
	flag.Parse()

	if *format != "gob" && *format != "flat" {
		fmt.Fprintf(os.Stderr, "rapidnn-compose: unknown -format %q (valid: gob, flat)\n", *format)
		os.Exit(1)
	}
	if *convert != "" {
		if *savePath == "" {
			fmt.Fprintln(os.Stderr, "rapidnn-compose: -convert needs -save for the output path")
			os.Exit(1)
		}
		if err := convertArtifact(*convert, *savePath, *format == "flat"); err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-compose: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("converted %s to %s (%s)\n", *convert, *savePath, *format)
		return
	}

	var bm *model.Benchmark
	for _, b := range model.Benchmarks(dataset.Small, *scale) {
		if strings.EqualFold(b.Dataset.Name, *name) {
			bm = b
			break
		}
	}
	if bm == nil {
		fmt.Fprintf(os.Stderr, "rapidnn-compose: unknown dataset %q (valid: %s)\n",
			*name, strings.Join(dataset.Names(), ", "))
		os.Exit(1)
	}

	fmt.Printf("dataset:  %s\n", bm.Dataset)
	fmt.Printf("topology: %s (%d params, %d MACs)\n", bm.Net.Topology(), bm.Net.ParamCount(), bm.Net.MACs())

	cfg := model.DefaultTrain()
	cfg.Epochs = *epochs
	baseErr := model.Train(bm.Net, bm.Dataset, cfg)
	fmt.Printf("baseline error: %.2f%% (paper reports %.1f%% on the real dataset)\n\n",
		100*baseErr, 100*bm.PaperError)

	ccfg := composer.DefaultConfig()
	ccfg.WeightClusters, ccfg.InputClusters = *w, *u
	ccfg.MaxIterations = *iters
	ccfg.ShareFraction = *share
	c, err := composer.Compose(bm.Net, bm.Dataset, ccfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-compose: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("composed with w=%d u=%d:\n", *w, *u)
	fmt.Printf("  reinterpreted error: %.2f%% (dE = %+.2f%%)\n", 100*c.FinalError, 100*c.DeltaE())
	fmt.Printf("  retraining epochs:   %d\n", c.TotalEpochs)
	for _, h := range c.History {
		fmt.Printf("    iteration %d: clustered error %.2f%%\n", h.Iteration, 100*h.ClusteredError)
	}

	mm := composer.DefaultMemoryModel()
	fmt.Printf("  accelerator tables:  %.1f MB total\n", float64(mm.TotalBytes(c.Plans))/1e6)

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-compose: %v\n", err)
			os.Exit(1)
		}
		if *format == "flat" {
			err = c.SaveFlat(f)
		} else {
			err = c.Save(f)
		}
		if err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "rapidnn-compose: save: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-compose: close: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  saved composed model to %s (%s)\n", *savePath, *format)
	}
	fmt.Println("\nper-layer plans:")
	for _, p := range c.Plans {
		if !p.IsCompute() {
			continue
		}
		rows := 0
		if p.ActTable != nil {
			rows = p.ActTable.Rows()
		}
		fmt.Printf("  %-6s %-5s neurons=%-6d edges=%-6d w=%-3d u=%-3d actRows=%-3d books=%d  %.1f KB/neuron\n",
			p.Name, p.Kind, p.Neurons, p.Edges, p.W(), p.U(), rows, len(p.WeightCodebooks),
			float64(mm.NeuronBytes(p))/1024)
	}
}

// convertArtifact transcodes src (either format) into dst.
func convertArtifact(src, dst string, flat bool) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := composer.Convert(in, out, flat); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	return out.Close()
}
