// Command rapidnn-bench regenerates every table and figure of the RAPIDNN
// paper's evaluation section (§5) and prints them in the paper's row/series
// layout. Use -only to select specific artifacts and -quick for the reduced
// grids used in tests.
//
// Usage:
//
//	rapidnn-bench [-quick] [-workers N] [-only t1,t2,t3,t4,f5,f6,f10,f11,f12,f13,f14,f15,f16,eff,ablate,xvar,xfault,xprotect]
//	rapidnn-bench [-cpuprofile cpu.out] [-memprofile mem.out] ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/prof"
)

func main() {
	quick := flag.Bool("quick", false, "reduced datasets, widths and sweep grids")
	only := flag.String("only", "", "comma-separated artifact ids (default: all)")
	csvDir := flag.String("csv", "", "also write each figure's data series as CSV into this directory")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()
	bench.Workers = *workers

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-bench: %v\n", err)
		os.Exit(1)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	s := bench.NewSuite(*quick)
	start := time.Now()
	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "rapidnn-bench: %s: %v\n", id, err)
		os.Exit(1)
	}
	saveCSV := func(id string, write func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(id, err)
		}
		path := filepath.Join(*csvDir, bench.CSVName(id))
		f, err := os.Create(path)
		if err != nil {
			fail(id, err)
		}
		if err := write(f); err != nil {
			f.Close()
			fail(id, err)
		}
		if err := f.Close(); err != nil {
			fail(id, err)
		}
		fmt.Printf("wrote %s\n\n", path)
	}

	if run("t1") {
		fmt.Println(bench.Table1())
	}
	if run("t2") {
		fmt.Println(bench.Table2(s))
	}
	if run("t3") {
		r, err := bench.Table3(s)
		if err != nil {
			fail("t3", err)
		}
		fmt.Println(r)
	}
	if run("t4") {
		r, err := bench.Table4(s)
		if err != nil {
			fail("t4", err)
		}
		fmt.Println(r)
		saveCSV("t4", r.WriteCSV)
	}
	if run("f5") {
		fmt.Println(bench.Figure5())
	}
	if run("f6") {
		r, err := bench.Figure6(s)
		if err != nil {
			fail("f6", err)
		}
		fmt.Println(r)
		saveCSV("f6", r.WriteCSV)
	}
	if run("f10") {
		r, err := bench.Figure10(s)
		if err != nil {
			fail("f10", err)
		}
		fmt.Println(r)
		saveCSV("f10", r.WriteCSV)
	}
	if run("f11") {
		r, err := bench.Figure11(*quick)
		if err != nil {
			fail("f11", err)
		}
		fmt.Println(r)
		saveCSV("f11", r.WriteCSV)
	}
	if run("f12") {
		r, err := bench.Figure12(s)
		if err != nil {
			fail("f12", err)
		}
		fmt.Println(r)
		saveCSV("f12", r.WriteCSV)
	}
	if run("f13") {
		r, err := bench.Figure13()
		if err != nil {
			fail("f13", err)
		}
		fmt.Println(r)
	}
	if run("f14") {
		fmt.Println(bench.Figure14())
	}
	if run("f15") {
		r, err := bench.Figure15(*quick)
		if err != nil {
			fail("f15", err)
		}
		fmt.Println(r)
		saveCSV("f15", r.WriteCSV)
	}
	if run("f16") {
		r, err := bench.Figure16(*quick)
		if err != nil {
			fail("f16", err)
		}
		fmt.Println(r)
		saveCSV("f16", r.WriteCSV)
	}
	if run("eff") {
		r, err := bench.Efficiency()
		if err != nil {
			fail("eff", err)
		}
		fmt.Println(r)
	}
	if run("ablate") {
		fmt.Println(bench.Ablations())
	}
	if run("xvar") {
		fmt.Println(bench.VariationStudy())
	}
	if run("xfault") {
		r, err := bench.FaultStudy(s, bench.FaultStudyConfig{})
		if err != nil {
			fail("xfault", err)
		}
		fmt.Println(r)
	}
	if run("xprotect") {
		r, err := bench.ProtectionStudy(s, 0.05, nil)
		if err != nil {
			fail("xprotect", err)
		}
		fmt.Println(r)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}
