// Command rapidnn-bench regenerates every table and figure of the RAPIDNN
// paper's evaluation section (§5) and prints them in the paper's row/series
// layout. Use -only to select specific artifacts and -quick for the reduced
// grids used in tests.
//
// Usage:
//
//	rapidnn-bench [-quick] [-workers N] [-only t1,t2,t3,t4,f5,f6,f10,f11,f12,f13,f14,f15,f16,eff,ablate,xvar,xfault,xprotect]
//	rapidnn-bench [-cpuprofile cpu.out] [-memprofile mem.out] ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/prof"
)

func main() {
	quick := flag.Bool("quick", false, "reduced datasets, widths and sweep grids")
	only := flag.String("only", "", "comma-separated artifact ids (default: all)")
	csvDir := flag.String("csv", "", "also write each figure's data series as CSV into this directory")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	metricsOut := flag.String("metrics", "", "write the harness metrics registry in Prometheus text format to this file at exit")
	traceOut := flag.String("trace-out", "", "record per-artifact and composition stage spans and write a Chrome trace to this file at exit")
	flag.Parse()
	bench.Workers = *workers

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(1 << 16)
		bench.Trace = tracer
	}
	if *metricsOut != "" || *traceOut != "" {
		bench.Obs = obs.NewRegistry()
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-bench: %v\n", err)
		os.Exit(1)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	s := bench.NewSuite(*quick)
	start := time.Now()
	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "rapidnn-bench: %s: %v\n", id, err)
		os.Exit(1)
	}
	saveCSV := func(id string, write func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(id, err)
		}
		path := filepath.Join(*csvDir, bench.CSVName(id))
		f, err := os.Create(path)
		if err != nil {
			fail(id, err)
		}
		if err := write(f); err != nil {
			f.Close()
			fail(id, err)
		}
		if err := f.Close(); err != nil {
			fail(id, err)
		}
		fmt.Printf("wrote %s\n\n", path)
	}

	// Artifact table: each entry prints its table/figure (and CSV, when the
	// figure has a series) or returns the error that aborts the run. The loop
	// wraps every artifact in a stage span, so -trace-out shows where a full
	// regeneration spends its time.
	type artifact struct {
		id string
		fn func() error
	}
	artifacts := []artifact{
		{id: "t1", fn: func() error { fmt.Println(bench.Table1()); return nil }},
		{id: "t2", fn: func() error { fmt.Println(bench.Table2(s)); return nil }},
		{id: "t3", fn: func() error {
			r, err := bench.Table3(s)
			if err != nil {
				return err
			}
			fmt.Println(r)
			return nil
		}},
		{id: "t4", fn: func() error {
			r, err := bench.Table4(s)
			if err != nil {
				return err
			}
			fmt.Println(r)
			saveCSV("t4", r.WriteCSV)
			return nil
		}},
		{id: "f5", fn: func() error { fmt.Println(bench.Figure5()); return nil }},
		{id: "f6", fn: func() error {
			r, err := bench.Figure6(s)
			if err != nil {
				return err
			}
			fmt.Println(r)
			saveCSV("f6", r.WriteCSV)
			return nil
		}},
		{id: "f10", fn: func() error {
			r, err := bench.Figure10(s)
			if err != nil {
				return err
			}
			fmt.Println(r)
			saveCSV("f10", r.WriteCSV)
			return nil
		}},
		{id: "f11", fn: func() error {
			r, err := bench.Figure11(*quick)
			if err != nil {
				return err
			}
			fmt.Println(r)
			saveCSV("f11", r.WriteCSV)
			return nil
		}},
		{id: "f12", fn: func() error {
			r, err := bench.Figure12(s)
			if err != nil {
				return err
			}
			fmt.Println(r)
			saveCSV("f12", r.WriteCSV)
			return nil
		}},
		{id: "f13", fn: func() error {
			r, err := bench.Figure13()
			if err != nil {
				return err
			}
			fmt.Println(r)
			return nil
		}},
		{id: "f14", fn: func() error { fmt.Println(bench.Figure14()); return nil }},
		{id: "f15", fn: func() error {
			r, err := bench.Figure15(*quick)
			if err != nil {
				return err
			}
			fmt.Println(r)
			saveCSV("f15", r.WriteCSV)
			return nil
		}},
		{id: "f16", fn: func() error {
			r, err := bench.Figure16(*quick)
			if err != nil {
				return err
			}
			fmt.Println(r)
			saveCSV("f16", r.WriteCSV)
			return nil
		}},
		{id: "eff", fn: func() error {
			r, err := bench.Efficiency()
			if err != nil {
				return err
			}
			fmt.Println(r)
			return nil
		}},
		{id: "ablate", fn: func() error { fmt.Println(bench.Ablations()); return nil }},
		{id: "xvar", fn: func() error { fmt.Println(bench.VariationStudy()); return nil }},
		{id: "xfault", fn: func() error {
			r, err := bench.FaultStudy(s, bench.FaultStudyConfig{})
			if err != nil {
				return err
			}
			fmt.Println(r)
			return nil
		}},
		{id: "xprotect", fn: func() error {
			r, err := bench.ProtectionStudy(s, 0.05, nil)
			if err != nil {
				return err
			}
			fmt.Println(r)
			return nil
		}},
	}
	for _, a := range artifacts {
		if !run(a.id) {
			continue
		}
		sp := tracer.Start("bench", a.id)
		if err := a.fn(); err != nil {
			fail(a.id, err)
		}
		sp.End()
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "rapidnn-bench: %v\n", err)
		os.Exit(1)
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, bench.Obs.WritePrometheus); err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
	if tracer != nil {
		if err := writeTo(*traceOut, tracer.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "rapidnn-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote stage trace (%d spans) to %s\n", tracer.Len(), *traceOut)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}

// writeTo streams an exporter into a freshly created file.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
