package rapidnn

// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark invokes the corresponding
// runner from internal/bench (quick mode, so `go test -bench=.` stays
// tractable); `cmd/rapidnn-bench` runs the same runners at full scale and
// prints the paper-style rows. EXPERIMENTS.md records paper-vs-measured.

import (
	"testing"

	"repro/internal/bench"
)

func benchSuite(b *testing.B) *bench.Suite {
	b.Helper()
	return bench.NewSuite(true)
}

// BenchmarkTable1Params regenerates Table 1 (RAPIDNN parameters).
func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Table1(); len(r.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Baselines regenerates Table 2 (models & baseline error).
func BenchmarkTable2Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if r := bench.Table2(s); len(r.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3ComposerOverhead regenerates Table 3 (composer overhead).
func BenchmarkTable3ComposerOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := bench.Table3(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4RNASharing regenerates Table 4 (RNA sharing).
func BenchmarkTable4RNASharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := bench.Table4(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Retraining regenerates Fig. 6 (clustering + retraining).
func BenchmarkFigure6Retraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := bench.Figure6(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10AccuracySweep regenerates Fig. 10 (Δe vs w,u).
func BenchmarkFigure10AccuracySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := bench.Figure10(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11EfficiencySweep regenerates Fig. 11 (energy/speedup vs GPU).
func BenchmarkFigure11EfficiencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure11(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12EDP regenerates Fig. 12 (EDP & memory vs Δe).
func BenchmarkFigure12EDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := bench.Figure12(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13Breakdown regenerates Fig. 13 (energy/time breakdown).
func BenchmarkFigure13Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure13(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure14Area regenerates Fig. 14 (area breakdown).
func BenchmarkFigure14Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Figure14(); len(r.ChipShares) == 0 {
			b.Fatal("empty breakdown")
		}
	}
}

// BenchmarkFigure15PIMComparison regenerates Fig. 15 (vs PIM accelerators).
func BenchmarkFigure15PIMComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure15(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure16ASICComparison regenerates Fig. 16 (vs Eyeriss/SnaPEA).
func BenchmarkFigure16ASICComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure16(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeEfficiency regenerates the §5.5 GOPS/mm² and GOPS/W text
// numbers.
func BenchmarkComputeEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Efficiency(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the design-choice micro-studies (seeding,
// activation quantization mode, NAF count folding, tree vs flat codebooks).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if a := bench.Ablations(); a.BinaryAddOps == 0 {
			b.Fatal("empty ablation result")
		}
	}
}
