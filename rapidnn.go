// Package rapidnn is a software implementation of RAPIDNN — "Deep Learning
// Acceleration with Neuron-to-Memory Transformation" (HPCA 2020) — as a
// reusable Go library. It covers the full pipeline the paper describes:
//
//  1. train a DNN (or bring layer shapes of your own),
//  2. reinterpret it with the DNN composer: cluster weights and activations
//     into codebooks, build activation lookup tables, retrain,
//  3. deploy the reinterpreted model onto the simulated RAPIDNN accelerator
//     (RNA blocks built from crossbar memories and nearest-distance CAMs)
//     and obtain latency / energy / area / accuracy reports.
//
// The package wraps the internal substrates (tensor math, the NN library,
// k-means codebooks, the memristor device models, the cycle/energy
// simulator and the baseline accelerator models) behind a small, stable
// surface. See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the system inventory.
package rapidnn

import (
	"fmt"
	"io"

	"repro/internal/accel"
	"repro/internal/composer"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Dataset is a labelled train/test split.
type Dataset struct {
	ds *dataset.Dataset
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.ds.Name }

// Classes returns the number of target classes.
func (d *Dataset) Classes() int { return d.ds.NumClasses }

// Features returns the flattened input feature count.
func (d *Dataset) Features() int { return d.ds.InSize() }

// TrainSize and TestSize return split sizes.
func (d *Dataset) TrainSize() int { return d.ds.TrainX.Dim(0) }

// TestSize returns the number of held-out samples.
func (d *Dataset) TestSize() int { return d.ds.TestX.Dim(0) }

// BenchmarkDataset returns one of the paper's six benchmark stand-ins:
// "MNIST", "ISOLET", "HAR", "CIFAR-10", "CIFAR-100" or "ImageNet". full
// selects the larger generation used by the experiment harness.
func BenchmarkDataset(name string, full bool) (*Dataset, error) {
	size := dataset.Small
	if full {
		size = dataset.Full
	}
	for _, d := range dataset.AllBenchmarks(size) {
		if d.Name == name {
			return &Dataset{ds: d}, nil
		}
	}
	return nil, fmt.Errorf("rapidnn: unknown benchmark dataset %q", name)
}

// SyntheticDataset generates a deterministic classification dataset with the
// given shape; see the paper-benchmark generators for reference settings.
func SyntheticDataset(name string, features, classes, train, test int, noise float64, seed int64) *Dataset {
	return &Dataset{ds: dataset.Generate(dataset.Config{
		Name: name, NumClasses: classes, InputShape: []int{features},
		Train: train, Test: test, Noise: noise, Seed: seed,
	})}
}

// Network is a trainable feed-forward model.
type Network struct {
	net *nn.Network
}

// NewMLP builds a fully-connected network with ReLU hidden layers (the
// paper's FC benchmark topology when hidden = [512, 512]).
func NewMLP(name string, in int, hidden []int, classes int, seed int64) *Network {
	if len(hidden) == 0 {
		h := model.FCNet(name, in, classes, 1, seed)
		return &Network{net: h}
	}
	// Build explicitly for arbitrary hidden stacks.
	rngNet := nn.NewNetwork(name)
	prev := in
	rng := newRand(seed)
	for i, h := range hidden {
		rngNet.Add(nn.NewDense(fmt.Sprintf("fc%d", i+1), prev, h, nn.ReLU{}, rng))
		prev = h
	}
	rngNet.Add(nn.NewDense("out", prev, classes, nn.Identity{}, rng))
	return &Network{net: rngNet}
}

// NewRNN builds a recurrent classifier: an Elman RNN over sequences of
// `steps` frames with `in` features each, followed by a dense softmax head —
// the recurrent layer type the RAPIDNN controller supports (§4.3).
func NewRNN(name string, in, hidden, steps, classes int, seed int64) *Network {
	rng := newRand(seed)
	net := nn.NewNetwork(name).
		Add(nn.NewRecurrent("rnn", in, hidden, steps, nn.Tanh{}, rng)).
		Add(nn.NewDense("out", hidden, classes, nn.Identity{}, rng))
	return &Network{net: net}
}

// SyntheticSequenceDataset generates a deterministic sequence-classification
// dataset: each class places its energy burst in a different segment of the
// sequence. Inputs are flattened [steps × features] frames.
func SyntheticSequenceDataset(name string, steps, features, classes, train, test int, seed int64) *Dataset {
	return &Dataset{ds: dataset.GenerateSequences(dataset.SequenceConfig{
		Name: name, Steps: steps, Features: features, NumClasses: classes,
		Train: train, Test: test, Seed: seed,
	})}
}

// BenchmarkModel builds the paper topology for a benchmark dataset at the
// given width scale (1.0 = the paper's layer sizes).
func BenchmarkModel(d *Dataset, scale float64, seed int64) (*Network, error) {
	switch d.Name() {
	case "MNIST", "ISOLET", "HAR":
		return &Network{net: model.FCNet(d.Name(), d.Features(), d.Classes(), scale, seed)}, nil
	case "CIFAR-10", "CIFAR-100":
		return &Network{net: model.ConvNet(d.Name(), 3, 32, 32, d.Classes(), scale, seed)}, nil
	case "ImageNet":
		return &Network{net: model.ImageNetNet(model.VGGNet, 3, 32, 32, d.Classes(), scale, seed)}, nil
	}
	return nil, fmt.Errorf("rapidnn: no benchmark topology for %q", d.Name())
}

// Topology renders the network in the paper's Table 2 notation.
func (n *Network) Topology() string { return n.net.Topology() }

// MACs returns multiply-accumulate operations per inference.
func (n *Network) MACs() int64 { return n.net.MACs() }

// TrainOptions configures baseline training (SGD with momentum, §5.2).
type TrainOptions struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
}

// DefaultTrainOptions mirrors the harness defaults.
func DefaultTrainOptions() TrainOptions {
	c := model.DefaultTrain()
	return TrainOptions{Epochs: c.Epochs, BatchSize: c.BatchSize, LR: c.LR, Momentum: c.Momentum}
}

// Train fits the network on the dataset's training split and returns the
// test error rate.
func (n *Network) Train(d *Dataset, opt TrainOptions) float64 {
	return model.Train(n.net, d.ds, model.TrainConfig{
		Epochs: opt.Epochs, BatchSize: opt.BatchSize, LR: opt.LR, Momentum: opt.Momentum,
	})
}

// ErrorRate evaluates the full-precision network on the test split.
func (n *Network) ErrorRate(d *Dataset) float64 {
	return n.net.ErrorRate(d.ds.TestX, d.ds.TestY, 64)
}

// ComposeOptions configures the DNN composer (§3). The zero value is
// replaced by the paper's defaults (w = u = 64, 64-row tables, ≤5
// iterations).
type ComposeOptions struct {
	WeightClusters int
	InputClusters  int
	ActTableRows   int
	MaxIterations  int
	RetrainEpochs  int
	// ShareFraction models RNA-block sharing (§5.6).
	ShareFraction float64
	// LinearQuantization disables the non-linear activation-table placement
	// (the ablation of §2.2).
	LinearQuantization bool
	// TreeCodebooks builds hierarchical codebooks (§3.1, Fig. 5) so the
	// composed model can later be Tune()d to a shallower precision level
	// without re-clustering.
	TreeCodebooks bool
	Seed          int64
}

func (o ComposeOptions) toConfig() composer.Config {
	cfg := composer.DefaultConfig()
	if o.WeightClusters > 0 {
		cfg.WeightClusters = o.WeightClusters
	}
	if o.InputClusters > 0 {
		cfg.InputClusters = o.InputClusters
	}
	if o.ActTableRows > 0 {
		cfg.ActRows = o.ActTableRows
	}
	if o.MaxIterations > 0 {
		cfg.MaxIterations = o.MaxIterations
	}
	if o.RetrainEpochs > 0 {
		cfg.RetrainEpochs = o.RetrainEpochs
	}
	cfg.ShareFraction = o.ShareFraction
	cfg.UseTreeCodebooks = o.TreeCodebooks
	if o.LinearQuantization {
		cfg.ActMode = quant.Linear
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// Composed is a reinterpreted, memory-ready model.
type Composed struct {
	inner *composer.Composed
	ds    *dataset.Dataset
	re    *composer.Reinterpreted
}

// Compose reinterprets the trained network for in-memory execution: weights
// and activations are clustered into codebooks, activation functions become
// lookup tables, and the model is retrained against the clustered weights.
// The input network is not modified.
func (n *Network) Compose(d *Dataset, opt ComposeOptions) (*Composed, error) {
	c, err := composer.Compose(n.net, d.ds, opt.toConfig())
	if err != nil {
		return nil, err
	}
	return &Composed{
		inner: c,
		ds:    d.ds,
		re:    composer.NewReinterpreted(c.Net, c.Plans),
	}, nil
}

// BaselineError is the full-precision test error before reinterpretation.
func (c *Composed) BaselineError() float64 { return c.inner.BaselineError }

// Error is the reinterpreted model's test error — exactly what the RNA
// hardware produces, since it computes with the same finite tables.
func (c *Composed) Error() float64 { return c.inner.FinalError }

// DeltaE is the accuracy loss Δe = Error − BaselineError (§3.2).
func (c *Composed) DeltaE() float64 { return c.inner.DeltaE() }

// RetrainEpochs is the number of retraining epochs the composer spent
// (Table 3).
func (c *Composed) RetrainEpochs() int { return c.inner.TotalEpochs }

// MemoryBytes is the accelerator table footprint of the composed model.
func (c *Composed) MemoryBytes() int64 {
	return composer.DefaultMemoryModel().TotalBytes(c.inner.Plans)
}

// Predict classifies raw feature vectors through the reinterpreted model.
func (c *Composed) Predict(inputs [][]float32) ([]int, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	in := c.inner.Net.InSize()
	flat := make([]float32, 0, len(inputs)*in)
	for i, row := range inputs {
		if len(row) != in {
			return nil, fmt.Errorf("rapidnn: input %d has %d features, want %d", i, len(row), in)
		}
		flat = append(flat, row...)
	}
	x := tensor.FromSlice(flat, len(inputs), in)
	return c.re.Predict(x), nil
}

// Tune re-targets a tree-codebook composition to new precision budgets by
// selecting shallower levels of the stored codebook trees — no re-clustering
// and no retraining, the dynamic reconfiguration of §3.1/§5.4. It returns a
// new Composed whose error has been re-estimated on the dataset; the
// receiver is unchanged. Compose with TreeCodebooks: true first.
func (c *Composed) Tune(maxWeightClusters, maxInputClusters int) (*Composed, error) {
	plans, err := composer.ReconfigurePlans(c.inner.Plans, maxWeightClusters, maxInputClusters)
	if err != nil {
		return nil, err
	}
	re := composer.NewReinterpreted(c.inner.Net, plans)
	inner := *c.inner
	inner.Plans = plans
	inner.FinalError = re.ErrorRate(c.ds.TestX, c.ds.TestY, 64)
	return &Composed{inner: &inner, ds: c.ds, re: re}, nil
}

// Save writes the composed model — quantized weights, codebooks, lookup
// tables and quality metadata — to w, so the offline composition can be
// shipped and reloaded without retraining.
func (c *Composed) Save(w io.Writer) error { return c.inner.Save(w) }

// LoadComposed reads a model written by Save and attaches the dataset it
// will be evaluated against (the artifact itself is dataset-independent).
func LoadComposed(r io.Reader, d *Dataset) (*Composed, error) {
	inner, err := composer.Load(r)
	if err != nil {
		return nil, err
	}
	return &Composed{
		inner: inner,
		ds:    d.ds,
		re:    composer.NewReinterpreted(inner.Net, inner.Plans),
	}, nil
}

// DeployOptions selects the accelerator deployment for simulation.
type DeployOptions struct {
	Chips         int     // 1 by default
	ShareFraction float64 // RNA sharing (§5.6)
}

// Report is the accelerator simulation result for one deployment.
type Report struct {
	Network                  string
	Chips                    int
	LatencySeconds           float64
	ThroughputIPS            float64
	EnergyPerInput           float64 // J, per-operation energy model
	AreaMM2                  float64
	PeakPowerW               float64
	MemoryBytes              int64
	RNAsRequired             int
	Multiplex                float64
	GOPS                     float64
	GOPSPerMM2               float64
	GOPSPerW                 float64
	EDP                      float64
	WeightedAccumEnergyShare float64
}

// Simulate maps the composed model onto the RAPIDNN accelerator and returns
// its performance/energy/area report.
func (c *Composed) Simulate(opt DeployOptions) (*Report, error) {
	cfg := accel.DefaultConfig()
	if opt.Chips > 0 {
		cfg.Chips = opt.Chips
	}
	cfg.ShareFraction = opt.ShareFraction
	rep, err := accel.Simulate(c.inner.Net.Name, c.inner.Plans, c.inner.Net.MACs(), cfg)
	if err != nil {
		return nil, err
	}
	return publicReport(rep), nil
}

func publicReport(rep *accel.Report) *Report {
	tot := rep.Breakdown.Total()
	waShare := 0.0
	if tot.EnergyJ > 0 {
		waShare = rep.Breakdown[0].EnergyJ / tot.EnergyJ
	}
	return &Report{
		Network:                  rep.Network,
		Chips:                    rep.Chips,
		LatencySeconds:           rep.LatencySeconds,
		ThroughputIPS:            rep.ThroughputIPS,
		EnergyPerInput:           rep.EnergyPerInputJ,
		AreaMM2:                  rep.AreaMM2,
		PeakPowerW:               rep.PeakPowerW,
		MemoryBytes:              rep.MemoryBytes,
		RNAsRequired:             rep.RNAsRequired,
		Multiplex:                rep.Multiplex,
		GOPS:                     rep.GOPS,
		GOPSPerMM2:               rep.GOPSPerMM2,
		GOPSPerW:                 rep.GOPSPerW,
		EDP:                      rep.EDP(),
		WeightedAccumEnergyShare: waShare,
	}
}
